//! The serving runtime: bounded admission queue → batching thread →
//! per-device workers over one shared [`CompileSession`].

use crate::batcher::{Batch, BatchKey, Batcher};
use crate::request::{InferenceRequest, InferenceResponse, ModelSpec, SubmitError, Ticket};
use crate::scheduler::{quick_estimate_ns, DevicePool};
use smartmem_core::{
    CacheStats, CompileSession, Framework, ModelReport, SmartMemPipeline, Unsupported,
};
use smartmem_sim::DeviceConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Marginal device-time cost of each request after the first in a
/// batch: batched execution amortizes kernel launches and re-uses the
/// warmed caches, so a batch of `n` costs
/// `latency × (1 + MARGINAL × (n − 1))` rather than `latency × n`.
const BATCH_MARGINAL: f64 = 0.85;

/// Simulated device time of a batch of `n` identical inferences, given
/// the single-inference latency.
pub fn batch_exec_ms(single_ms: f64, n: usize) -> f64 {
    single_ms * (1.0 + BATCH_MARGINAL * n.saturating_sub(1) as f64)
}

/// Tunables of the serving runtime.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Capacity of the bounded submission queue (admission control:
    /// `try_submit` sheds load beyond it, `submit` applies
    /// backpressure).
    pub queue_capacity: usize,
    /// Batch-size flush threshold of the coalescer.
    pub max_batch: usize,
    /// Deadline flush threshold of the coalescer.
    pub max_delay: Duration,
    /// Wall-clock throttle: workers sleep `exec_ms × scale` per batch,
    /// making queueing dynamics (and therefore batching) realistic.
    /// `0.0` disables sleeping — batches drain as fast as the host can
    /// estimate them (the right mode for tests).
    pub exec_time_scale: f64,
    /// Persistent artifact-cache directory for the compilation session.
    /// When set, cold compiles are written through to disk and a
    /// restarted server warm-starts from the artifacts — 100 % cache
    /// hit rate from the very first request (see
    /// [`CompileSession::with_cache_dir`]). `None` keeps the session
    /// purely in-memory.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            exec_time_scale: 0.0,
            cache_dir: None,
        }
    }
}

/// Aggregate serving statistics (snapshot or final, from
/// [`Server::stats`] / [`Server::shutdown`]).
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered (including compilation failures).
    pub completed: u64,
    /// Requests rejected by admission control (`try_submit` on a full
    /// queue).
    pub rejected: u64,
    /// Requests answered with a compilation error.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// `histogram[n-1]` = number of batches of size `n`.
    pub batch_histogram: Vec<u64>,
    /// Batches executed per device, by pool id.
    pub per_device_batches: Vec<u64>,
    /// Compilation-session counters (per-request granularity: steady
    /// state is all hits).
    pub cache: CacheStats,
    /// Distinct compiled artifacts in the session cache.
    pub compiled: usize,
}

impl ServeStats {
    /// Session cache hit rate in `[0, 1]` (0 when nothing compiled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }

    /// Mean executed batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            let total: u64 =
                self.batch_histogram.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
            total as f64 / self.batches as f64
        }
    }
}

/// One queued request riding through batcher and worker.
struct Pending {
    id: u64,
    model: usize,
    device: usize,
    est_ns: u64,
    submitted: Instant,
    tx: Sender<InferenceResponse>,
}

struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batch_histogram: Vec<AtomicU64>,
    per_device_batches: Vec<AtomicU64>,
    completion_seq: AtomicU64,
}

/// State shared by the public handle, the batching thread and the
/// device workers.
struct Inner {
    models: Vec<ModelSpec>,
    pool: DevicePool,
    session: CompileSession,
    framework: Box<dyn Framework>,
    /// Roofline placement estimates, `estimates[model][device]` in ns.
    estimates: Vec<Vec<f64>>,
    config: ServeConfig,
    metrics: Metrics,
}

/// The serving runtime handle.
///
/// `start` spins up one batching thread plus one worker thread per
/// device; `submit`/`try_submit` enqueue requests and return
/// [`Ticket`]s; `shutdown` drains everything and returns the final
/// statistics. The handle is `Sync`: submit from as many threads as
/// you like.
pub struct Server {
    inner: Arc<Inner>,
    submit_tx: SyncSender<Pending>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Server {
    /// Starts a server over the default SmartMem pipeline.
    pub fn start(models: Vec<ModelSpec>, devices: Vec<DeviceConfig>, config: ServeConfig) -> Self {
        Self::start_with_framework(models, devices, config, Box::new(SmartMemPipeline::new()))
    }

    /// Starts a server compiling through an explicit framework
    /// pipeline.
    ///
    /// # Panics
    ///
    /// Panics when `models` or `devices` is empty.
    pub fn start_with_framework(
        models: Vec<ModelSpec>,
        devices: Vec<DeviceConfig>,
        config: ServeConfig,
        framework: Box<dyn Framework>,
    ) -> Self {
        assert!(!models.is_empty(), "register at least one model");
        assert!(!devices.is_empty(), "provide at least one device");
        let pool = DevicePool::new(devices);
        let estimates = models
            .iter()
            .map(|m| (0..pool.len()).map(|d| quick_estimate_ns(m, pool.device(d))).collect())
            .collect();
        let metrics = Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_histogram: (0..config.max_batch).map(|_| AtomicU64::new(0)).collect(),
            per_device_batches: (0..pool.len()).map(|_| AtomicU64::new(0)).collect(),
            completion_seq: AtomicU64::new(0),
        };
        // A broken cache directory must not take the server down with
        // it — fall back to a purely in-memory session and keep
        // serving (every compile just goes cold).
        let session = match &config.cache_dir {
            Some(dir) => CompileSession::with_cache_dir(dir).unwrap_or_else(|e| {
                eprintln!(
                    "smartmem-serve: cache dir {} unusable ({e}), serving without it",
                    dir.display()
                );
                CompileSession::new()
            }),
            None => CompileSession::new(),
        };
        let inner = Arc::new(Inner {
            models,
            pool,
            session,
            framework,
            estimates,
            config: config.clone(),
            metrics,
        });

        let (submit_tx, submit_rx) = mpsc::sync_channel::<Pending>(config.queue_capacity);
        let mut batch_txs = Vec::new();
        let mut workers = Vec::new();
        for device in 0..inner.pool.len() {
            let (tx, rx) = mpsc::channel::<Batch<Pending>>();
            batch_txs.push(tx);
            let inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&inner, device, rx)));
        }
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || batcher_loop(&inner, submit_rx, batch_txs))
        };
        Server { inner, submit_tx, batcher: Some(batcher), workers, next_id: AtomicU64::new(0) }
    }

    /// Model id registered under `name`, if any.
    pub fn model_id(&self, name: &str) -> Option<usize> {
        self.inner.models.iter().position(|m| m.name == name)
    }

    /// Registered models.
    pub fn models(&self) -> &[ModelSpec] {
        &self.inner.models
    }

    /// Device pool.
    pub fn pool(&self) -> &DevicePool {
        &self.inner.pool
    }

    /// Submits with backpressure: blocks while the bounded queue is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] for unknown model/device ids or a
    /// shutting-down server.
    pub fn submit(&self, req: InferenceRequest) -> Result<Ticket, SubmitError> {
        let (pending, ticket) = self.admit(req)?;
        let device = pending.device;
        let est = pending.est_ns;
        self.submit_tx.send(pending).map_err(|_| {
            self.inner.pool.discharge(device, est);
            SubmitError::ShuttingDown
        })?;
        self.inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Submits without blocking, shedding load when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when admission control
    /// rejects the request, or the same errors as [`Server::submit`].
    pub fn try_submit(&self, req: InferenceRequest) -> Result<Ticket, SubmitError> {
        let (pending, ticket) = self.admit(req)?;
        let device = pending.device;
        let est = pending.est_ns;
        match self.submit_tx.try_send(pending) {
            Ok(()) => {
                self.inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(err) => {
                self.inner.pool.discharge(device, est);
                Err(match err {
                    TrySendError::Full(_) => {
                        self.inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                        SubmitError::QueueFull
                    }
                    TrySendError::Disconnected(_) => SubmitError::ShuttingDown,
                })
            }
        }
    }

    /// Validates, places, and charges a request; builds its ticket.
    fn admit(&self, req: InferenceRequest) -> Result<(Pending, Ticket), SubmitError> {
        let inner = &self.inner;
        if req.model >= inner.models.len() {
            return Err(SubmitError::UnknownModel(req.model));
        }
        let (device, est_ns) = match req.device {
            Some(d) => {
                if d >= inner.pool.len() {
                    return Err(SubmitError::UnknownDevice(d));
                }
                let est = inner.estimates[req.model][d].max(0.0) as u64;
                inner.pool.charge(d, est);
                (d, est)
            }
            None => inner.pool.place(&inner.estimates[req.model]),
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let pending =
            Pending { id, model: req.model, device, est_ns, submitted: Instant::now(), tx };
        Ok((pending, Ticket { id, rx }))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        let m = &self.inner.metrics;
        ServeStats {
            submitted: m.submitted.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            batch_histogram: m.batch_histogram.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            per_device_batches: m
                .per_device_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cache: self.inner.session.stats(),
            compiled: self.inner.session.len(),
        }
    }

    /// Stops accepting requests, drains every queued batch, joins all
    /// threads and returns the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        // Closing the submission channel unwinds the pipeline: the
        // batching thread drains and exits, dropping the dispatch
        // channels, which terminates the workers.
        let (dead_tx, _) = mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.submit_tx, dead_tx));
        if let Some(b) = self.batcher.take() {
            b.join().expect("batching thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        self.stats()
    }
}

fn batcher_loop(inner: &Inner, rx: Receiver<Pending>, batch_txs: Vec<Sender<Batch<Pending>>>) {
    let mut batcher: Batcher<Pending> =
        Batcher::new(inner.config.max_batch, inner.config.max_delay);
    let dispatch = |batch: Batch<Pending>| {
        // Workers only exit after this thread drops the senders, so
        // dispatch cannot fail while we are running.
        batch_txs[batch.key.device].send(batch).expect("worker exited before batcher");
    };
    loop {
        // Block outright while nothing is pending (an idle server costs
        // zero wakeups); arm a timeout only when an open batch has a
        // deadline to meet.
        let received = match batcher.next_deadline(Instant::now()) {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(wait) => rx.recv_timeout(wait),
        };
        match received {
            Ok(pending) => {
                let now = Instant::now();
                let key = BatchKey { model: pending.model, device: pending.device };
                if let Some(batch) = batcher.push(key, pending, now) {
                    dispatch(batch);
                }
                for batch in batcher.due(now) {
                    dispatch(batch);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                for batch in batcher.due(Instant::now()) {
                    dispatch(batch);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                for batch in batcher.drain() {
                    dispatch(batch);
                }
                break;
            }
        }
    }
}

fn worker_loop(inner: &Inner, device_id: usize, rx: Receiver<Batch<Pending>>) {
    let device = inner.pool.device(device_id).clone();
    // Latency reports per model on this device. Only this worker ever
    // touches (·, device_id) pairs, so the memo is thread-local.
    let mut reports: HashMap<usize, ModelReport> = HashMap::new();
    while let Ok(batch) = rx.recv() {
        let exec_start = Instant::now();
        let size = batch.items.len();
        let model_id = batch.key.model;
        let spec = &inner.models[model_id];

        // Compile every request through the shared session:
        // compile-on-first-use, cache-warm (and in-flight-deduplicated)
        // thereafter. The fingerprint was precomputed at registration,
        // so a warm call is a hash-map lookup. Accounting is deliberately
        // per *request* — the hit rate answers "what fraction of traffic
        // was served from a warm artifact", so the follow-up requests of
        // a batch count as hits too.
        // A panicking pass must fail this model's requests, not kill
        // the device worker (which would strand every later batch
        // routed here): the session's FlightGuard already unwedges
        // concurrent waiters, and catching the unwind turns the panic
        // into a per-request error response.
        let compiled: Vec<_> = batch
            .items
            .iter()
            .map(|_| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.session.compile_keyed(
                        inner.framework.as_ref(),
                        &spec.graph,
                        spec.fingerprint,
                        &device,
                    )
                }))
                .unwrap_or_else(|_| {
                    (Err(Unsupported::new(inner.framework.name(), "compilation panicked")), false)
                })
            })
            .collect();

        // The sampled-trace latency estimate is much cheaper than
        // compilation but still worth paying once per model, not per
        // batch.
        let exec_ms = compiled
            .iter()
            .find_map(|(res, _)| res.as_ref().ok())
            .map(|output| {
                reports.entry(model_id).or_insert_with(|| output.optimized.estimate(&device))
            })
            .map_or(0.0, |r| batch_exec_ms(r.latency_ms, size));
        if inner.config.exec_time_scale > 0.0 && exec_ms > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                exec_ms * inner.config.exec_time_scale / 1e3,
            ));
        }

        let m = &inner.metrics;
        m.batches.fetch_add(1, Ordering::Relaxed);
        m.per_device_batches[device_id].fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = m.batch_histogram.get(size.saturating_sub(1)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        for (item, (result, cache_hit)) in batch.items.into_iter().zip(compiled) {
            inner.pool.discharge(device_id, item.est_ns);
            let error = result.as_ref().err().map(|e| e.to_string());
            if error.is_some() {
                m.failed.fetch_add(1, Ordering::Relaxed);
            }
            m.completed.fetch_add(1, Ordering::Relaxed);
            let response = InferenceResponse {
                request_id: item.id,
                completion_seq: m.completion_seq.fetch_add(1, Ordering::Relaxed),
                model: spec.name.clone(),
                device: device.name.clone(),
                batch_size: size,
                queue_ms: exec_start.saturating_duration_since(item.submitted).as_secs_f64() * 1e3,
                exec_ms,
                wall_ms: item.submitted.elapsed().as_secs_f64() * 1e3,
                compile_cache_hit: cache_hit,
                error,
            };
            // A dropped ticket just means nobody is listening.
            let _ = item.tx.send(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_exec_time_is_sublinear() {
        let one = batch_exec_ms(10.0, 1);
        let four = batch_exec_ms(10.0, 4);
        assert_eq!(one, 10.0);
        assert!(four < 40.0, "batching must amortize: {four}");
        assert!(four > 10.0);
    }
}
