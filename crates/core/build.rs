//! Emits `SMARTMEM_BUILD_FINGERPRINT`: an FNV-1a digest of every source
//! file whose logic shapes a compiled artifact (this crate plus the ir /
//! index / sim / baselines sources it optimizes with).
//!
//! The persistent compilation cache folds this fingerprint into every
//! artifact header. Cache keys only cover pass *names and parameters*
//! (`PassManager::sequence_id`), so without it a rebuilt binary with
//! changed pass logic would silently serve artifacts computed by the old
//! code; with it, any optimizer source edit invalidates the whole cache
//! and everything recompiles cold (fails open, never wrong).

use std::path::{Path, PathBuf};

fn collect(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // sibling crate missing (e.g. vendored build): skip
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("manifest dir"));
    let roots = ["src", "../ir/src", "../index/src", "../sim/src", "../baselines/src"];
    let mut files = Vec::new();
    for root in roots {
        collect(&manifest.join(root), &mut files);
    }
    files.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for file in &files {
        println!("cargo:rerun-if-changed={}", file.display());
        if let Some(name) = file.file_name().and_then(|n| n.to_str()) {
            fnv(name.as_bytes());
        }
        if let Ok(contents) = std::fs::read(file) {
            fnv(&contents);
        }
    }
    println!("cargo:rustc-env=SMARTMEM_BUILD_FINGERPRINT={hash:016x}");
}
