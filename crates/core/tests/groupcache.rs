//! Integration tests of kernel-group-granular incremental compilation:
//! the incremental path must be byte-identical to the full pipeline for
//! arbitrary models and cache states, a one-layer edit must re-optimize
//! only the touched group, parallel tuning must equal the per-group
//! serial computation, and cached decisions must survive a restart.

use proptest::prelude::*;
use smartmem_core::{
    group_content_hash, iteration_mn, CompileSession, Framework, GaTuner, GroupCache,
    SmartMemPipeline,
};
use smartmem_ir::wire::encode_to_vec;
use smartmem_ir::{DType, Graph, GraphBuilder, UnaryKind};
use smartmem_sim::DeviceConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch directory per test (no tempfile crate in the
/// offline container); removed on drop, best-effort.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smartmem-groupcache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const KINDS: [UnaryKind; 6] = [
    UnaryKind::Relu,
    UnaryKind::Gelu,
    UnaryKind::Silu,
    UnaryKind::Tanh,
    UnaryKind::Sigmoid,
    UnaryKind::Exp,
];

/// A transformer-ish stack of distinct matmul+activation blocks with a
/// layout-transform chain in the middle (so LTE has something to
/// eliminate). Each block uses a different activation, so every kernel
/// group has a distinct content hash.
fn blocks_model(name: &str, kinds: &[UnaryKind]) -> Graph {
    let mut b = GraphBuilder::new(name.to_string());
    let x = b.input("x", &[1, 16, 64], DType::F16);
    let mut cur = x;
    for (i, &kind) in kinds.iter().enumerate() {
        let w = b.weight(format!("w{i}"), &[64, 64], DType::F16);
        let mm = b.matmul(cur, w);
        cur = b.unary(mm, kind);
        if i == kinds.len() / 2 {
            // An eliminable reshape/transpose pair mid-stack.
            let r = b.reshape(cur, &[16, 64]);
            let t = b.transpose(r, &[1, 0]);
            cur = b.reshape(t, &[1, 16, 64]);
        }
    }
    b.output(cur);
    b.finish()
}

#[test]
fn edit_one_layer_re_optimizes_only_touched_groups() {
    let session = CompileSession::new();
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();

    let a = blocks_model("edit-a", &KINDS);
    session.compile(&fw, &a, &device).unwrap();
    let cold = session.stats();
    assert_eq!(cold.group_hits, 0, "first compile has nothing to reuse");
    assert!(cold.group_misses >= KINDS.len(), "every distinct block tunes cold");

    // Change one activation in the middle of the stack.
    let mut kinds = KINDS;
    kinds[2] = UnaryKind::Sqrt;
    let edited = blocks_model("edit-a", &kinds);
    session.compile(&fw, &edited, &device).unwrap();
    let warm = session.stats();
    assert_eq!(
        warm.group_misses - cold.group_misses,
        1,
        "a one-layer edit re-optimizes exactly the touched group"
    );
    assert_eq!(
        warm.group_hits - cold.group_hits,
        cold.group_misses - 1,
        "every untouched group replays its cached decisions"
    );
}

#[test]
fn parallel_tuning_matches_per_group_serial_reference() {
    // The tune pass fans groups out across threads; salting the GA seed
    // with the group content hash makes the result a pure function of
    // the group, so a serial per-group rerun must reproduce every
    // config and utilization bit-for-bit regardless of thread schedule.
    let device = DeviceConfig::snapdragon_8gen2();
    let g = blocks_model("serial-ref", &KINDS);
    let out = SmartMemPipeline::new().optimize(&g, &device).unwrap();
    let tuner = GaTuner::default();
    assert!(out.groups.len() >= KINDS.len());
    for group in &out.groups {
        let node = out.graph.node(group.anchor);
        let (m, n) = iteration_mn(out.graph.tensor(node.outputs[0]).shape.dims());
        let salt = group_content_hash(&out.graph, group);
        let (config, util) = tuner.tune_salted(&node.op, m, n, salt);
        assert_eq!(group.config, config, "parallel tuning diverged from the serial reference");
        assert_eq!(group.utilization, util);
    }
}

#[test]
fn group_cache_persists_across_sessions() {
    let dir = ScratchDir::new("restart");
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();
    let a = blocks_model("restart-a", &KINDS);

    let baseline = {
        let session = CompileSession::with_cache_dir(dir.path()).unwrap();
        session.compile(&fw, &a, &device).unwrap();
        session.stats().group_misses
    }; // drop saves group-cache.smem
    assert!(dir.path().join("group-cache.smem").exists());

    // A *different* model (no artifact hit possible) sharing all but
    // one block: the restarted session replays the shared groups from
    // disk and refines only the new one.
    let mut kinds = KINDS;
    kinds[4] = UnaryKind::Recip;
    let b = blocks_model("restart-b", &kinds);
    let session = CompileSession::with_cache_dir(dir.path()).unwrap();
    session.compile(&fw, &b, &device).unwrap();
    let stats = session.stats();
    assert_eq!(stats.disk_hits, 0, "model B has no persisted artifact");
    assert_eq!(stats.group_misses, 1, "only the changed block is refined");
    assert_eq!(stats.group_hits, baseline - 1, "shared groups replay from group-cache.smem");
}

#[test]
fn empty_batches_return_without_spawning_workers() {
    let session = CompileSession::new();
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks: Vec<Box<dyn Framework>> = vec![Box::new(SmartMemPipeline::new())];
    let graphs = [blocks_model("batch", &KINDS[..2])];

    // No graphs: no rows and, regression-wise, no idle worker thread.
    let none = session.compile_batch(&frameworks, &[], &device, 0);
    assert!(none.is_empty());
    // No frameworks: one empty row per graph.
    let empty_fw: Vec<Box<dyn Framework>> = Vec::new();
    let rows = session.compile_batch(&empty_fw, &graphs, &device, 0);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].is_empty());
    let stats = session.stats();
    assert_eq!((stats.hits, stats.misses), (0, 0), "empty batches compile nothing");
}

/// Random chains of transform + compute ops (same generator family as
/// the persist tests) for the equivalence property below.
fn random_chain(name: &str, dims0: &[usize], ops: &[u8]) -> Graph {
    let mut b = GraphBuilder::new(name.to_string());
    let x = b.input("x", dims0, DType::F16);
    let w = b.weight("w", &[dims0[dims0.len() - 1], dims0[dims0.len() - 1]], DType::F16);
    let mut cur = b.matmul(x, w);
    let mut dims = dims0.to_vec();
    for &op in ops {
        match op % 5 {
            0 => {
                if dims.len() >= 2 {
                    let last = dims.pop().unwrap();
                    let prev = dims.pop().unwrap();
                    dims.push(prev * last);
                    cur = b.reshape(cur, &dims);
                }
            }
            1 => {
                let perm: Vec<usize> = (0..dims.len()).rev().collect();
                dims = perm.iter().map(|&p| dims[p]).collect();
                cur = b.transpose(cur, &perm);
            }
            2 => cur = b.unary(cur, UnaryKind::Relu),
            3 => cur = b.unary(cur, UnaryKind::Gelu),
            _ => {
                let axis = dims.len() - 1;
                if dims[axis] > 2 {
                    cur = b.slice(cur, axis, 0, dims[axis] - 1);
                    dims[axis] -= 1;
                }
            }
        }
    }
    b.output(cur);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Group-granular compilation is *observationally invisible*: for
    /// any model, compiling through `run_incremental` — with a cold
    /// cache, and again with a warm cache primed by a related model —
    /// produces an `OptimizedGraph` byte-identical (wire encoding) to
    /// the whole-model `run_on` path.
    #[test]
    fn incremental_compile_is_byte_identical(
        ops in prop::collection::vec(0u8..5, 0..7),
        edit in prop::collection::vec(0u8..5, 0..7),
    ) {
        let device = DeviceConfig::snapdragon_8gen2();
        let manager = SmartMemPipeline::new().passes();
        let g = random_chain("prop", &[4, 6, 8], &ops);

        let full = manager.run_on(&g, &device).unwrap();
        let reference = encode_to_vec(&full.optimized);

        let cache = GroupCache::new();
        let cold = manager.run_incremental(&g, &device, &cache).unwrap();
        prop_assert_eq!(&encode_to_vec(&cold.optimized), &reference, "cold incremental differs");

        // Prime the cache further with a related model, then recompile:
        // hits must replay to the exact same bytes.
        let related = random_chain("prop-related", &[4, 6, 8], &edit);
        manager.run_incremental(&related, &device, &cache).unwrap();
        let warm = manager.run_incremental(&g, &device, &cache).unwrap();
        prop_assert_eq!(&encode_to_vec(&warm.optimized), &reference, "warm incremental differs");
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "the warm recompile must reuse cached groups");
    }
}
