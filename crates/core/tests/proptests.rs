//! Property-based tests of the optimizer's invariants: whatever random
//! (valid) operator chain we build, elimination must preserve the
//! dataflow semantics encoded in the composed index maps, fusion must
//! partition the kept operators, and layout selection must emit valid
//! layouts.

use proptest::prelude::*;
use smartmem_core::{
    assemble_groups, classify, combine_action, eliminate, fuse, result_class, select_layouts,
    CombineAction, OpClass, SelectionLevel,
};
use smartmem_ir::{DType, Graph, GraphBuilder, TensorId, UnaryKind};
use smartmem_sim::DeviceConfig;

/// A random chain of layout transforms between two compute ops.
fn build_chain(ops: &[u8]) -> (Graph, TensorId) {
    let mut b = GraphBuilder::new("prop-chain");
    let x = b.input("x", &[4, 6, 8], DType::F16);
    let w = b.weight("w", &[8, 8], DType::F16);
    let mut cur = b.matmul(x, w); // [4, 6, 8]
    let mut dims = vec![4usize, 6, 8];
    for &op in ops {
        match op % 4 {
            0 => {
                // reshape: merge last two dims or split first (skipping
                // the split when the extent is odd — slicing can leave
                // odd extents that do not factor).
                if dims.len() >= 2 {
                    let last = dims.pop().unwrap();
                    let prev = dims.pop().unwrap();
                    dims.push(prev * last);
                } else if dims[0] % 2 == 0 {
                    dims = vec![2, dims[0] / 2];
                }
                cur = b.reshape(cur, &dims);
            }
            1 => {
                let rank = dims.len();
                let perm: Vec<usize> = (0..rank).rev().collect();
                dims = perm.iter().map(|&p| dims[p]).collect();
                cur = b.transpose(cur, &perm);
            }
            2 => {
                // split then keep part 0.
                let axis = 0;
                if dims[axis] % 2 == 0 {
                    let parts = b.split(cur, axis, 2);
                    cur = parts[0];
                    dims[axis] /= 2;
                }
            }
            _ => {
                let axis = dims.len() - 1;
                if dims[axis] > 2 {
                    cur = b.slice(cur, axis, 1, dims[axis] - 1);
                    dims[axis] -= 1;
                }
            }
        }
    }
    let out = b.unary(cur, UnaryKind::Gelu);
    b.output(out);
    (b.finish(), out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The composed map of an eliminated chain must agree with applying
    /// the chain's operators one at a time.
    #[test]
    fn elimination_preserves_dataflow(ops in prop::collection::vec(0u8..4, 1..6)) {
        let (graph, _) = build_chain(&ops);
        let lte = eliminate(&graph, true, true);
        // The gelu's input resolves to the matmul output through the map.
        let gelu = graph.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let resolved = lte.resolve(gelu.inputs[0]);
        let src_shape = graph.tensor(resolved.source).shape.clone();
        if let Some(map) = &resolved.map {
            prop_assert_eq!(map.in_extents(), src_shape.dims());
            let decl = graph.tensor(gelu.inputs[0]).shape.clone();
            prop_assert_eq!(map.out_extents(), decl.dims());
            // Spot-check coordinates stay in bounds (correct pull-back).
            let total: u64 = decl.numel().min(128);
            for off in 0..total {
                let coord = decl.delinearize(off);
                let src = map.eval(&coord);
                for (j, &c) in src.iter().enumerate() {
                    prop_assert!(c < src_shape.dim(j), "coord {:?} -> {:?} out of bounds", coord, src);
                }
            }
        }
    }

    /// Fusion output is a partition of the kept operators.
    #[test]
    fn fusion_partitions_kept_ops(ops in prop::collection::vec(0u8..4, 1..6)) {
        let (graph, _) = build_chain(&ops);
        let lte = eliminate(&graph, true, true);
        let groups = fuse(&graph, &lte, true);
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &m in &g.members {
                prop_assert!(seen.insert(m), "operator {m:?} in two groups");
            }
        }
        prop_assert_eq!(seen.len(), lte.kept.len());
    }

    /// Every layout chosen by selection validates against its tensor.
    #[test]
    fn selected_layouts_are_valid(ops in prop::collection::vec(0u8..4, 1..6), level in 0u8..3) {
        let (graph, _) = build_chain(&ops);
        let device = DeviceConfig::snapdragon_8gen2();
        let lte = eliminate(&graph, true, true);
        let drafts = fuse(&graph, &lte, true);
        let mut groups = assemble_groups(&graph, &lte, &drafts);
        let level = match level {
            0 => SelectionLevel::Default,
            1 => SelectionLevel::ReductionK1,
            _ => SelectionLevel::ReductionK2,
        };
        select_layouts(&graph, &mut groups, &device, level);
        for g in &groups {
            let out_rank = graph.tensor(g.output).shape.rank();
            prop_assert!(g.output_layout.validate(out_rank).is_ok());
            for r in &g.reads {
                let rank = graph.tensor(r.source).shape.rank();
                prop_assert!(r.layout.validate(rank).is_ok(), "invalid layout {} for rank {rank}", r.layout);
            }
        }
    }

    /// Table 5's combination rules are total and consistent with the
    /// complexity ordering of Table 6.
    #[test]
    fn combination_rules_total(a in 0u8..4, b in 0u8..4) {
        let classes = [OpClass::ILD_VARIABLE, OpClass::ILI_VARIABLE, OpClass::ILD_FIXED, OpClass::ILI_FIXED];
        let (ca, cb) = (classes[a as usize], classes[b as usize]);
        let action = combine_action(ca, cb);
        let result = result_class(ca, cb);
        prop_assert!(result.complexity() >= ca.complexity().min(cb.complexity()));
        // Fixed-output operators never survive an elimination action.
        if matches!(action, CombineAction::EliminateBoth) {
            prop_assert_eq!(ca.output, smartmem_core::OutputKind::Fixed);
            prop_assert_eq!(cb.output, smartmem_core::OutputKind::Fixed);
        }
    }
}

#[test]
fn classification_is_total_over_op_kinds() {
    // Every operator kind lands in exactly one quadrant.
    use smartmem_ir::Op;
    let ops = vec![
        Op::Conv2d { stride: (1, 1), padding: (0, 0), groups: 1 },
        Op::MatMul { trans_a: false, trans_b: false },
        Op::LayerNorm { axes: vec![1] },
        Op::InstanceNorm,
        Op::Softmax { axis: 0 },
        Op::Reduce { kind: smartmem_ir::ReduceKind::Sum, axes: vec![0], keep_dims: false },
        Op::Pool2d {
            kind: smartmem_ir::PoolKind::Max,
            kernel: (2, 2),
            stride: (2, 2),
            padding: (0, 0),
        },
        Op::Unary { kind: UnaryKind::Relu },
        Op::Binary { kind: smartmem_ir::BinaryKind::Add },
        Op::Concat { axis: 0 },
        Op::Reshape { shape: vec![1] },
        Op::Transpose { perm: vec![0] },
        Op::DepthToSpace { block: 2 },
        Op::SpaceToDepth { block: 2 },
        Op::Gather { axis: 0 },
        Op::Slice { axis: 0, start: 0, len: 1 },
        Op::Split { axis: 0, parts: 2 },
    ];
    for op in ops {
        let _ = classify(&op); // must not panic
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `OptStats` — including the streamline counters appended to the
    /// v2 wire layout — round-trips exactly.
    #[test]
    fn optstats_roundtrip_on_the_wire(
        source_ops in 0usize..10_000,
        kernel_count in 0usize..10_000,
        eliminated_ops in 0usize..10_000,
        fused_ops in 0usize..10_000,
        implicit_inserted in 0usize..10_000,
        redundant_tensors in 0usize..10_000,
        streamline_removed_ops in 0usize..10_000,
        streamline_transposes_removed in 0usize..10_000,
    ) {
        use smartmem_core::OptStats;
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        let stats = OptStats {
            source_ops,
            kernel_count,
            eliminated_ops,
            fused_ops,
            implicit_inserted,
            redundant_tensors,
            redundant_bytes_max: (source_ops as u64) << 20,
            streamline_removed_ops,
            streamline_transposes_removed,
        };
        let back: OptStats = decode_from(&encode_to_vec(&stats)).expect("decode");
        prop_assert_eq!(stats, back);
    }
}
