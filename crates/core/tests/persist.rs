//! Integration tests of the persistent compilation cache: round-trip
//! identity for randomized graphs, warm restarts served entirely from
//! disk, and the corrupt/stale fallbacks (a damaged cache may cost a
//! cold compile, but never correctness and never a panic).

use proptest::prelude::*;
use smartmem_core::{
    graph_fingerprint, CompileSession, Framework, PassManager, SmartMemPipeline, Unsupported,
};
use smartmem_ir::wire::{decode_from, encode_to_vec};
use smartmem_ir::{DType, Graph, GraphBuilder, UnaryKind};
use smartmem_sim::DeviceConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch directory per test (no tempfile crate in the
/// offline container); removed on drop, best-effort.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "smartmem-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }

    /// The artifact files currently in the directory (the LTE memo
    /// file excluded).
    fn artifacts(&self) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&self.0)
            .expect("cache dir exists")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("art-") && n.ends_with(".smem"))
            })
            .collect();
        files.sort();
        files
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn toy() -> Graph {
    let mut b = GraphBuilder::new("persist-toy");
    let x = b.input("x", &[1, 16, 32], DType::F16);
    let w = b.weight("w", &[32, 32], DType::F16);
    let mm = b.matmul(x, w);
    let t = b.transpose(mm, &[0, 2, 1]);
    let out = b.softmax(t, 2);
    b.output(out);
    b.finish()
}

#[test]
fn warm_session_serves_from_disk_with_identical_results() {
    let dir = ScratchDir::new("warm");
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();
    let g = toy();

    let cold_session = CompileSession::with_cache_dir(dir.path()).unwrap();
    let cold = cold_session.compile(&fw, &g, &device).unwrap();
    assert_eq!(cold_session.stats().misses, 1);
    assert_eq!(cold_session.disk_len(), 1);

    // A fresh session over the same directory — as after a process
    // restart — must not run a single pass sequence, and the decoded
    // artifact must be indistinguishable from the freshly compiled one.
    let warm_session = CompileSession::with_cache_dir(dir.path()).unwrap();
    let warm = warm_session.compile(&fw, &g, &device).unwrap();
    let stats = warm_session.stats();
    assert_eq!(stats.misses, 0, "warm session must not cold-compile");
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.hits, 1);
    assert_eq!(format!("{:?}", cold.optimized), format!("{:?}", warm.optimized));
    assert_eq!(format!("{:?}", cold.timings), format!("{:?}", warm.timings));
    assert_eq!(format!("{:?}", cold.diagnostics), format!("{:?}", warm.diagnostics));

    // Second compile in the warm session hits memory, not disk.
    let _ = warm_session.compile(&fw, &g, &device).unwrap();
    assert_eq!(warm_session.stats().disk_hits, 1);
    assert_eq!(warm_session.stats().hits, 2);

    // The estimate pipeline accepts the decoded artifact end to end.
    let report = warm.optimized.estimate(&device);
    assert!(report.latency_ms > 0.0);
}

#[test]
fn truncated_artifact_falls_back_to_cold_compile() {
    let dir = ScratchDir::new("truncated");
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();
    let g = toy();
    CompileSession::with_cache_dir(dir.path()).unwrap().compile(&fw, &g, &device).unwrap();

    for artifact in dir.artifacts() {
        let bytes = std::fs::read(&artifact).unwrap();
        std::fs::write(&artifact, &bytes[..bytes.len() / 2]).unwrap();
    }

    let session = CompileSession::with_cache_dir(dir.path()).unwrap();
    let out = session.compile(&fw, &g, &device).unwrap();
    let stats = session.stats();
    assert_eq!((stats.misses, stats.disk_hits), (1, 0), "truncated artifact must be ignored");
    assert!(out.optimized.stats.kernel_count > 0);
    // The write-through replaced the damaged artifact: a third session
    // is warm again.
    let healed = CompileSession::with_cache_dir(dir.path()).unwrap();
    healed.compile(&fw, &g, &device).unwrap();
    assert_eq!(healed.stats().disk_hits, 1);
}

#[test]
fn corrupted_payload_falls_back_to_cold_compile() {
    let dir = ScratchDir::new("corrupt");
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();
    let g = toy();
    CompileSession::with_cache_dir(dir.path()).unwrap().compile(&fw, &g, &device).unwrap();

    for artifact in dir.artifacts() {
        let mut bytes = std::fs::read(&artifact).unwrap();
        // Flip bits in the middle of the payload; the checksum in the
        // header must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&artifact, &bytes).unwrap();
    }

    let session = CompileSession::with_cache_dir(dir.path()).unwrap();
    session.compile(&fw, &g, &device).unwrap();
    let stats = session.stats();
    assert_eq!((stats.misses, stats.disk_hits), (1, 0), "corrupted artifact must be ignored");
}

#[test]
fn version_mismatch_is_ignored_not_misparsed() {
    let dir = ScratchDir::new("version");
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();
    let g = toy();
    CompileSession::with_cache_dir(dir.path()).unwrap().compile(&fw, &g, &device).unwrap();

    for artifact in dir.artifacts() {
        let mut bytes = std::fs::read(&artifact).unwrap();
        // Bump the version field (bytes 4..8, little-endian u32) as a
        // future/foreign format would appear; payload stays intact, so
        // only the version check can reject it.
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        bytes[4..8].copy_from_slice(&(version + 1).to_le_bytes());
        std::fs::write(&artifact, &bytes).unwrap();
    }

    let session = CompileSession::with_cache_dir(dir.path()).unwrap();
    session.compile(&fw, &g, &device).unwrap();
    let stats = session.stats();
    assert_eq!((stats.misses, stats.disk_hits), (1, 0), "other-version artifact must be ignored");
}

#[test]
fn garbage_files_in_cache_dir_are_harmless() {
    let dir = ScratchDir::new("garbage");
    let device = DeviceConfig::snapdragon_8gen2();
    let fw = SmartMemPipeline::new();
    let g = toy();
    let cold = CompileSession::with_cache_dir(dir.path()).unwrap();
    cold.compile(&fw, &g, &device).unwrap();

    // Overwrite the artifact with pure noise shorter than a header, and
    // drop an unrelated file beside it.
    for artifact in dir.artifacts() {
        std::fs::write(&artifact, b"not an artifact").unwrap();
    }
    std::fs::write(dir.path().join("README.txt"), b"hello").unwrap();

    let session = CompileSession::with_cache_dir(dir.path()).unwrap();
    session.compile(&fw, &g, &device).unwrap();
    assert_eq!(session.stats().misses, 1);
}

#[test]
fn negative_results_are_persisted_and_served() {
    struct Refuses;
    struct RefusePass;
    impl smartmem_core::Pass for RefusePass {
        fn name(&self) -> &'static str {
            "refuse"
        }
        fn run(&self, ctx: &mut smartmem_core::CompileCtx) -> Result<(), Unsupported> {
            Err(Unsupported::new(ctx.framework.clone(), "deterministic refusal"))
        }
    }
    impl Framework for Refuses {
        fn name(&self) -> &str {
            "Refuses"
        }
        fn passes(&self) -> PassManager {
            PassManager::new("Refuses").then(RefusePass)
        }
    }

    let dir = ScratchDir::new("negative");
    let device = DeviceConfig::snapdragon_8gen2();
    let g = toy();
    let cold = CompileSession::with_cache_dir(dir.path()).unwrap();
    let err = cold.compile(&Refuses, &g, &device).unwrap_err();
    assert_eq!(cold.stats().misses, 1);
    assert_eq!(dir.artifacts().len(), 1, "the refusal must be written through");

    // A warm session serves the refusal from disk without running the
    // pass sequence; like all errors it counts in neither hits nor
    // misses, only in disk_hits.
    let warm = CompileSession::with_cache_dir(dir.path()).unwrap();
    let warm_err = warm.compile(&Refuses, &g, &device).unwrap_err();
    let stats = warm.stats();
    assert_eq!((stats.hits, stats.misses, stats.disk_hits), (0, 0, 1));
    assert_eq!(warm_err.to_string(), err.to_string());
}

// ---------------------------------------------------------------------
// Round-trip identity on randomized graphs
// ---------------------------------------------------------------------

/// Builds a randomized-but-valid graph: a chain of operators chosen by
/// `ops` over an input of shape `dims`, exercising the transform
/// operators LTE eliminates as well as kept compute operators.
fn random_chain(dims: &[usize], ops: &[u8]) -> Graph {
    let mut b = GraphBuilder::new("rand-chain");
    let mut cur = b.input("x", dims, DType::F16);
    let mut cur_dims = dims.to_vec();
    for &code in ops {
        match code % 6 {
            0 => cur = b.unary(cur, UnaryKind::Gelu),
            1 => {
                // Merge the last two dims.
                if cur_dims.len() >= 2 {
                    let mut to = cur_dims.clone();
                    let last = to.pop().unwrap();
                    *to.last_mut().unwrap() *= last;
                    cur = b.reshape(cur, &to);
                    cur_dims = to;
                }
            }
            2 => {
                // Rotate the dimension order.
                if cur_dims.len() >= 2 {
                    let rank = cur_dims.len();
                    let perm: Vec<usize> = (1..rank).chain(std::iter::once(0)).collect();
                    cur = b.transpose(cur, &perm);
                    cur_dims = perm.iter().map(|&p| cur_dims[p]).collect();
                }
            }
            3 => cur = b.softmax(cur, cur_dims.len() - 1),
            4 => {
                // Slice the first axis when it has room.
                if cur_dims[0] > 1 {
                    let len = cur_dims[0] - 1;
                    cur = b.slice(cur, 0, 1, len);
                    cur_dims[0] = len;
                }
            }
            _ => cur = b.binary(cur, cur, smartmem_ir::BinaryKind::Add),
        }
    }
    b.output(cur);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → decode is the identity on random graphs (witnessed by
    /// both the Debug rendering and the content fingerprint the cache
    /// keys on).
    #[test]
    fn graph_roundtrip_is_identity(
        dims in prop::collection::vec(1usize..6, 1..4),
        ops in prop::collection::vec(0u8..6, 0..10),
    ) {
        let g = random_chain(&dims, &ops);
        let back: Graph = decode_from(&encode_to_vec(&g)).expect("graph roundtrip");
        prop_assert_eq!(format!("{:?}", g), format!("{:?}", back));
        prop_assert_eq!(graph_fingerprint(&g), graph_fingerprint(&back));
    }

    /// The full compiled artifact round-trips: optimize a random graph,
    /// encode the CompileOutput, decode it, and require bit-identical
    /// Debug renderings (groups, layouts, index maps, configs, stats,
    /// timings, diagnostics).
    #[test]
    fn compile_output_roundtrip_is_identity(
        dims in prop::collection::vec(2usize..5, 2..4),
        ops in prop::collection::vec(0u8..6, 1..7),
    ) {
        let g = random_chain(&dims, &ops);
        let device = DeviceConfig::snapdragon_8gen2();
        let out = SmartMemPipeline::new().optimize_timed(&g, &device).expect("compiles");
        let back: smartmem_core::CompileOutput =
            decode_from(&encode_to_vec(&out)).expect("artifact roundtrip");
        prop_assert_eq!(format!("{:?}", out), format!("{:?}", back));
    }
}
