//! Pairwise producer→consumer combination rules (§3.2, Tables 5–6).

use crate::classify::{OpClass, OutputKind};

/// The action SmartMem takes for a producer→consumer operator pair
/// (Table 5). Rows of the paper's table are the *first* (producer)
/// operator, columns the *second* (consumer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CombineAction {
    /// Both operators remain separate kernels (two ILD & Variable ops).
    KeepBoth,
    /// Attempt operator fusion (legality per DNNFusion's rules).
    TryFuse,
    /// The first (producer) operator is eliminated and replaced by index
    /// computation in the consumer.
    EliminateFirst,
    /// The second (consumer) operator is eliminated; the producer writes
    /// directly in the transformed layout.
    EliminateSecond,
    /// Both operators are layout transformations: both are eliminated
    /// (their index maps compose).
    EliminateBoth,
}

/// Layout-search obligation after combining (Table 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SearchPolicy {
    /// Search input and output layouts of both operators.
    SearchBoth,
    /// Search layouts for the fused operator.
    SearchFused,
    /// Search layouts for the surviving first operator.
    SearchFirst,
    /// Search layouts for the surviving second operator.
    SearchSecond,
    /// No layout search needed.
    NoSearch,
}

/// Table 5: the action for a `(first, second)` class pair.
pub fn combine_action(first: OpClass, second: OpClass) -> CombineAction {
    use OutputKind::*;
    match (first.output, second.output) {
        // Both Fixed: compose and eliminate both.
        (Fixed, Fixed) => CombineAction::EliminateBoth,
        // Fixed producer feeding a computing consumer: fold the
        // transformation into the consumer's reads.
        (Fixed, Variable) => CombineAction::EliminateFirst,
        // Computing producer feeding a Fixed consumer: fold the
        // transformation into the producer's writes.
        (Variable, Fixed) => CombineAction::EliminateSecond,
        // Both Variable: two ILD ops stay separate; anything involving
        // an ILI op tries to fuse.
        (Variable, Variable) => {
            if first == OpClass::ILD_VARIABLE && second == OpClass::ILD_VARIABLE {
                CombineAction::KeepBoth
            } else {
                CombineAction::TryFuse
            }
        }
    }
}

/// Table 6 (upper entry per cell): the class of the resulting
/// fused/preserved operator — the operand with the higher
/// "optimization complexity" wins.
pub fn result_class(first: OpClass, second: OpClass) -> OpClass {
    if first.complexity() >= second.complexity() {
        first
    } else {
        second
    }
}

/// Table 6 (lower entry per cell): the layout-search policy. Searching
/// only ever happens for pairs that involve an `ILD & Variable`
/// operator.
pub fn search_policy(first: OpClass, second: OpClass) -> SearchPolicy {
    use CombineAction::*;
    let ild_var_first = first == OpClass::ILD_VARIABLE;
    let ild_var_second = second == OpClass::ILD_VARIABLE;
    match combine_action(first, second) {
        KeepBoth => SearchPolicy::SearchBoth,
        TryFuse => {
            if ild_var_first || ild_var_second {
                SearchPolicy::SearchFused
            } else {
                SearchPolicy::NoSearch
            }
        }
        EliminateSecond => {
            if ild_var_first {
                SearchPolicy::SearchFirst
            } else {
                SearchPolicy::NoSearch
            }
        }
        EliminateFirst => {
            if ild_var_second {
                SearchPolicy::SearchSecond
            } else {
                SearchPolicy::NoSearch
            }
        }
        EliminateBoth => SearchPolicy::NoSearch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::OpClass as C;

    #[test]
    fn table5_row_ild_variable() {
        assert_eq!(combine_action(C::ILD_VARIABLE, C::ILD_VARIABLE), CombineAction::KeepBoth);
        assert_eq!(combine_action(C::ILD_VARIABLE, C::ILI_VARIABLE), CombineAction::TryFuse);
        assert_eq!(combine_action(C::ILD_VARIABLE, C::ILD_FIXED), CombineAction::EliminateSecond);
        assert_eq!(combine_action(C::ILD_VARIABLE, C::ILI_FIXED), CombineAction::EliminateSecond);
    }

    #[test]
    fn table5_row_ili_variable() {
        assert_eq!(combine_action(C::ILI_VARIABLE, C::ILD_VARIABLE), CombineAction::TryFuse);
        assert_eq!(combine_action(C::ILI_VARIABLE, C::ILI_VARIABLE), CombineAction::TryFuse);
        assert_eq!(combine_action(C::ILI_VARIABLE, C::ILD_FIXED), CombineAction::EliminateSecond);
        assert_eq!(combine_action(C::ILI_VARIABLE, C::ILI_FIXED), CombineAction::EliminateSecond);
    }

    #[test]
    fn table5_rows_fixed() {
        for first in [C::ILD_FIXED, C::ILI_FIXED] {
            assert_eq!(combine_action(first, C::ILD_VARIABLE), CombineAction::EliminateFirst);
            assert_eq!(combine_action(first, C::ILI_VARIABLE), CombineAction::EliminateFirst);
            assert_eq!(combine_action(first, C::ILD_FIXED), CombineAction::EliminateBoth);
            assert_eq!(combine_action(first, C::ILI_FIXED), CombineAction::EliminateBoth);
        }
    }

    #[test]
    fn conv_reshape_example() {
        // §3.2: Conv (ILD&Var) + Reshape (ILD&Fixed): Reshape eliminated,
        // surviving operator still ILD&Var, search its layout.
        let (conv, reshape) = (C::ILD_VARIABLE, C::ILD_FIXED);
        assert_eq!(combine_action(conv, reshape), CombineAction::EliminateSecond);
        assert_eq!(result_class(conv, reshape), C::ILD_VARIABLE);
        assert_eq!(search_policy(conv, reshape), SearchPolicy::SearchFirst);
    }

    #[test]
    fn table6_result_class_follows_complexity() {
        assert_eq!(result_class(C::ILI_VARIABLE, C::ILD_VARIABLE), C::ILD_VARIABLE);
        assert_eq!(result_class(C::ILD_FIXED, C::ILI_VARIABLE), C::ILI_VARIABLE);
        assert_eq!(result_class(C::ILI_FIXED, C::ILI_FIXED), C::ILI_FIXED);
    }

    #[test]
    fn table6_search_policies() {
        assert_eq!(search_policy(C::ILD_VARIABLE, C::ILD_VARIABLE), SearchPolicy::SearchBoth);
        assert_eq!(search_policy(C::ILI_VARIABLE, C::ILD_VARIABLE), SearchPolicy::SearchFused);
        assert_eq!(search_policy(C::ILI_VARIABLE, C::ILI_VARIABLE), SearchPolicy::NoSearch);
        assert_eq!(search_policy(C::ILD_FIXED, C::ILD_VARIABLE), SearchPolicy::SearchSecond);
        assert_eq!(search_policy(C::ILD_FIXED, C::ILI_VARIABLE), SearchPolicy::NoSearch);
        assert_eq!(search_policy(C::ILD_FIXED, C::ILI_FIXED), SearchPolicy::NoSearch);
        assert_eq!(search_policy(C::ILI_VARIABLE, C::ILD_FIXED), SearchPolicy::NoSearch);
        assert_eq!(search_policy(C::ILD_VARIABLE, C::ILD_FIXED), SearchPolicy::SearchFirst);
    }

    #[test]
    fn layout_search_only_for_ild_variable_pairs() {
        // Exhaustive: any pair without an ILD&Variable member must not
        // require a search.
        let classes = [C::ILD_VARIABLE, C::ILI_VARIABLE, C::ILD_FIXED, C::ILI_FIXED];
        for &a in &classes {
            for &b in &classes {
                let has_ild_var = a == C::ILD_VARIABLE || b == C::ILD_VARIABLE;
                if !has_ild_var {
                    assert_eq!(search_policy(a, b), SearchPolicy::NoSearch, "{a} x {b}");
                }
            }
        }
    }
}
