//! The compilation session layer: a content-hash compilation cache and
//! parallel compilation of model batches.
//!
//! A [`CompileSession`] memoizes [`PassManager`] runs keyed by
//! *(graph fingerprint, device fingerprint, pass-sequence id)*, so
//! recompiling the same model for the same device through the same
//! framework returns the cached [`CompileOutput`] (shared via `Arc`)
//! instead of re-running the passes. Cache hits are observable through
//! [`CompileSession::stats`], which the benchmark harness prints.
//!
//! [`CompileSession::compile_batch`] fans a framework×model job matrix
//! out over `std::thread::scope` workers (the container has no rayon;
//! a scoped work-stealing loop over an atomic cursor gives the same
//! embarrassingly-parallel behaviour for the 20-model zoo).

use crate::pass::CompileOutput;
use crate::pipeline::{Framework, Unsupported};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Streams a value's Debug rendering straight into a hasher, avoiding
/// the transient String a `format!`-then-hash would allocate (graphs
/// render to hundreds of KB).
fn debug_hash(value: &dyn fmt::Debug) -> u64 {
    struct HashWriter<'a>(&'a mut DefaultHasher);
    impl fmt::Write for HashWriter<'_> {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }
    let mut h = DefaultHasher::new();
    write!(HashWriter(&mut h), "{value:?}").expect("Debug formatting is infallible");
    h.finish()
}

/// Content hash of a graph (structure, shapes, dtypes, operator
/// attributes, origins). Two graphs with equal fingerprints optimize
/// identically under every deterministic pass sequence.
///
/// The IR's Debug rendering covers every semantic field (tensors,
/// shapes, dtypes, kinds, nodes, operator attributes, edges), which
/// makes it a faithful — if unglamorous — content witness.
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    debug_hash(graph)
}

/// Content hash of a device configuration.
pub fn device_fingerprint(device: &DeviceConfig) -> u64 {
    debug_hash(device)
}

/// Result of one compilation job (shared on cache hits).
pub type CompileResult = Result<Arc<CompileOutput>, Unsupported>;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    graph: u64,
    device: u64,
    sequence: u64,
}

/// Hit/miss counters of a [`CompileSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations served from the cache.
    pub hits: usize,
    /// Compilations that ran the pass sequence.
    pub misses: usize,
}

/// A compilation session: caches pass-manager runs and compiles model
/// batches in parallel. Thread-safe; share by reference across worker
/// threads.
#[derive(Default)]
pub struct CompileSession {
    cache: Mutex<HashMap<CacheKey, Arc<CompileOutput>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl CompileSession {
    /// Empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `graph` for `device` through `framework`, returning the
    /// cached output when an identical compilation already ran in this
    /// session.
    ///
    /// Concurrent identical compilations may each run the pass sequence
    /// (the lock is not held across the run); the first to finish wins
    /// the cache slot and every caller receives that canonical `Arc`.
    /// `misses` counts pass-sequence executions, so a racy duplicate is
    /// visible in [`CompileSession::stats`].
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] for operator-support gaps (errors are
    /// not cached; they are cheap to recompute).
    pub fn compile(
        &self,
        framework: &dyn Framework,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> CompileResult {
        let manager = framework.passes();
        let key = CacheKey {
            graph: graph_fingerprint(graph),
            device: device_fingerprint(device),
            sequence: manager.sequence_id(),
        };
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let output = Arc::new(manager.run_on(graph, device)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock().expect("cache lock");
        let canonical = cache.entry(key).or_insert_with(|| Arc::clone(&output));
        Ok(Arc::clone(canonical))
    }

    /// Compiles every (framework, graph) pair of the job matrix across
    /// `threads` workers (`0` = one per available core), returning
    /// results as `results[graph_idx][framework_idx]`.
    ///
    /// Work is distributed dynamically through an atomic cursor, so a
    /// slow model (e.g. the SD UNet) does not serialize a whole worker's
    /// share behind it.
    pub fn compile_batch(
        &self,
        frameworks: &[Box<dyn Framework>],
        graphs: &[Graph],
        device: &DeviceConfig,
        threads: usize,
    ) -> Vec<Vec<CompileResult>> {
        let jobs = frameworks.len() * graphs.len();
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        }
        .clamp(1, jobs.max(1));
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CompileResult>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = cursor.fetch_add(1, Ordering::Relaxed);
                    if job >= jobs {
                        break;
                    }
                    let (gi, fi) = (job / frameworks.len(), job % frameworks.len());
                    let result = self.compile(frameworks[fi].as_ref(), &graphs[gi], device);
                    *slots[job].lock().expect("slot lock") = Some(result);
                });
            }
        });
        let mut results = Vec::with_capacity(graphs.len());
        let mut slots = slots.into_iter();
        for _ in 0..graphs.len() {
            let mut row = Vec::with_capacity(frameworks.len());
            for _ in 0..frameworks.len() {
                let slot = slots.next().expect("slot per job");
                row.push(slot.into_inner().expect("slot lock").expect("every job ran"));
            }
            results.push(row);
        }
        results
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached compilations.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{SmartMemConfig, SmartMemPipeline};
    use smartmem_ir::{DType, GraphBuilder};

    fn toy(tag: &str) -> Graph {
        let mut b = GraphBuilder::new(tag.to_string());
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x, w);
        let t = b.transpose(mm, &[0, 2, 1]);
        let out = b.softmax(t, 2);
        b.output(out);
        b.finish()
    }

    #[test]
    fn cache_hits_on_identical_compiles() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let fw = SmartMemPipeline::new();
        let g = toy("toy");
        let cold = session.compile(&fw, &g, &device).unwrap();
        let warm = session.compile(&fw, &g, &device).unwrap();
        assert_eq!(session.stats(), CacheStats { hits: 1, misses: 1 });
        assert!(Arc::ptr_eq(&cold, &warm));
    }

    #[test]
    fn cache_separates_configs_devices_and_graphs() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let g = toy("toy");
        session.compile(&SmartMemPipeline::new(), &g, &device).unwrap();
        session
            .compile(&SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level()), &g, &device)
            .unwrap();
        session.compile(&SmartMemPipeline::new(), &g, &DeviceConfig::snapdragon_835()).unwrap();
        // Same structure under a different graph name still hits: the
        // name is part of the Debug rendering, so it does not — keep the
        // expectation explicit.
        session.compile(&SmartMemPipeline::new(), &toy("other"), &device).unwrap();
        assert_eq!(session.stats(), CacheStats { hits: 0, misses: 4 });
        assert_eq!(session.len(), 4);
    }

    #[test]
    fn batch_compile_matches_direct() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let frameworks: Vec<Box<dyn Framework>> = vec![
            Box::new(SmartMemPipeline::new()),
            Box::new(SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level())),
        ];
        let graphs = vec![toy("a"), toy("b")];
        let results = session.compile_batch(&frameworks, &graphs, &device, 0);
        assert_eq!(results.len(), 2);
        for (gi, row) in results.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (fi, res) in row.iter().enumerate() {
                let direct = frameworks[fi].optimize(&graphs[gi], &device).unwrap();
                let batched = res.as_ref().unwrap();
                assert_eq!(direct.stats, batched.optimized.stats);
            }
        }
    }
}
