//! The compilation session layer: a content-hash compilation cache and
//! parallel compilation of model batches.
//!
//! A [`CompileSession`] memoizes [`PassManager`] runs keyed by
//! *(graph fingerprint, device fingerprint, pass-sequence id)*, so
//! recompiling the same model for the same device through the same
//! framework returns the cached [`CompileOutput`] (shared via `Arc`)
//! instead of re-running the passes. Cache hits are observable through
//! [`CompileSession::stats`], which the benchmark harness prints.
//!
//! Cold compilations are *single-flight*: when several threads request
//! the same cold key concurrently, exactly one runs the pass sequence
//! and the rest block on a condvar until the canonical result lands —
//! the behaviour a serving layer needs when a traffic burst hits an
//! uncompiled model.
//!
//! The cache has two levels. The in-memory fingerprint map above, and —
//! for sessions opened with [`CompileSession::with_cache_dir`] — an
//! on-disk artifact cache (see the `persist` module docs for the file
//! format): memory misses probe the directory before compiling,
//! cold compiles write through, and a restarted process is cache-hot
//! from its first request.
//!
//! [`CompileSession::compile_batch`] fans a framework×model job matrix
//! out over `std::thread::scope` workers (the container has no rayon;
//! a scoped work-stealing loop over an atomic cursor gives the same
//! embarrassingly-parallel behaviour for the 20-model zoo).

use crate::groupcache::GroupCache;
use crate::pass::CompileOutput;
use crate::persist::{ArtifactKey, DiskCache};
use crate::pipeline::{Framework, Unsupported};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;
use smartmem_telemetry::Counter;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::hash::Hasher;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Streams a value's Debug rendering straight into `h`, avoiding the
/// transient String a `format!`-then-hash would allocate (graphs render
/// to hundreds of KB). Shared by the session's content fingerprints and
/// the LTE pass's composition memo.
pub(crate) fn hash_debug_into(h: &mut DefaultHasher, value: &dyn fmt::Debug) {
    struct HashWriter<'a>(&'a mut DefaultHasher);
    impl fmt::Write for HashWriter<'_> {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }
    write!(HashWriter(h), "{value:?}").expect("Debug formatting is infallible");
}

/// 64-bit digest of a value's Debug rendering.
fn debug_hash(value: &dyn fmt::Debug) -> u64 {
    let mut h = DefaultHasher::new();
    hash_debug_into(&mut h, value);
    h.finish()
}

/// Content hash of a graph (structure, shapes, dtypes, operator
/// attributes, origins). Two graphs with equal fingerprints optimize
/// identically under every deterministic pass sequence.
///
/// The IR's Debug rendering covers every semantic field (tensors,
/// shapes, dtypes, kinds, nodes, operator attributes, edges), which
/// makes it a faithful — if unglamorous — content witness.
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    debug_hash(graph)
}

/// Content hash of a device configuration.
pub fn device_fingerprint(device: &DeviceConfig) -> u64 {
    debug_hash(device)
}

/// Result of one compilation job (shared on cache hits).
pub type CompileResult = Result<Arc<CompileOutput>, Unsupported>;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    graph: u64,
    device: u64,
    sequence: u64,
    /// [`Graph::sym_bucket`] — `0` for static graphs, a digest of the
    /// bound shape buckets for symbolic ones. Redundant with the graph
    /// fingerprint (the Debug rendering covers the bound values) but
    /// explicit, so the per-bucket artifacts of a bucketed decode model
    /// can never alias each other.
    bucket: u64,
}

impl CacheKey {
    fn artifact(&self) -> ArtifactKey {
        ArtifactKey {
            graph: self.graph,
            device: self.device,
            sequence: self.sequence,
            bucket: self.bucket,
        }
    }
}

/// Hit/miss counters of a [`CompileSession`].
///
/// `hits / (hits + misses)` is the cache hit rate; `misses` counts the
/// compilations that actually ran the pass sequence (the expensive
/// event the cache exists to avoid).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations served from the cache (in-memory or on-disk).
    pub hits: usize,
    /// Compilations that ran the pass sequence (cold compiles).
    pub misses: usize,
    /// Compilations served by decoding an on-disk artifact (cold in
    /// memory, warm on disk) — nonzero only for sessions opened with
    /// [`CompileSession::with_cache_dir`]. Successful disk serves also
    /// count in `hits`; persisted negative results (deterministic
    /// [`Unsupported`] refusals) count here but — like every error — in
    /// neither `hits` nor `misses`.
    pub disk_hits: usize,
    /// Kernel groups whose layout/tuning decisions were replayed from
    /// the per-group decision cache during cold compiles (incremental
    /// compilation). A whole-artifact cache hit touches no groups, so
    /// these counters move only when the pass sequence actually runs:
    /// after a one-layer model edit, `group_misses` counts exactly the
    /// groups the edit changed.
    pub group_hits: usize,
    /// Kernel groups refined cold (layout selection + GA tuning ran).
    pub group_misses: usize,
    /// Disk-cache payload I/Os failed by an injected
    /// [`smartmem_sim::FaultPlan`] (see
    /// [`CompileSession::inject_disk_faults`]). Each faulted read is
    /// also an ordinary miss (the session compiled cold); each faulted
    /// write silently lost one artifact. Always zero outside chaos
    /// tests.
    pub disk_faults: usize,
}

/// Handles into [`smartmem_telemetry::global`] the session publishes
/// its cache activity through — resolved once at session construction
/// so the request path never takes the registry lock. The counters are
/// process-cumulative (every session adds into them); per-session
/// figures stay available through [`CompileSession::stats`].
struct CacheTelemetry {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    disk_hits: Arc<Counter>,
    group_hits: Arc<Counter>,
    group_misses: Arc<Counter>,
}

impl Default for CacheTelemetry {
    fn default() -> Self {
        let registry = smartmem_telemetry::global();
        CacheTelemetry {
            hits: registry.counter("compile.cache_hits"),
            misses: registry.counter("compile.cache_misses"),
            disk_hits: registry.counter("compile.disk_hits"),
            group_hits: registry.counter("compile.group_hits"),
            group_misses: registry.counter("compile.group_misses"),
        }
    }
}

/// Publishes one cold compile's per-pass wall-clock timings into the
/// global registry (`compile.pass.<name>_ns` histograms plus the
/// sequence total). Cold compiles are rare, so the registry lookups
/// here are off every hot path.
fn publish_pass_timings(output: &CompileOutput) {
    let registry = smartmem_telemetry::global();
    let mut total: u64 = 0;
    for t in &output.timings {
        let ns = u64::try_from(t.duration.as_nanos()).unwrap_or(u64::MAX);
        total = total.saturating_add(ns);
        registry.histogram(&format!("compile.pass.{}_ns", t.pass)).record(ns);
    }
    registry.histogram("compile.cold_ns").record(total);
}

/// A pending cold compilation other threads can wait on.
struct InFlight {
    done: Mutex<Option<CompileResult>>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn wait(&self) -> CompileResult {
        let mut done = self.done.lock().expect("in-flight lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("in-flight wait");
        }
        done.as_ref().expect("filled above").clone()
    }

    fn fill(&self, result: CompileResult) {
        *self.done.lock().expect("in-flight lock") = Some(result);
        self.cv.notify_all();
    }
}

/// One cache slot: either a finished compilation or one in progress.
enum Slot {
    Ready(Arc<CompileOutput>),
    InFlight(Arc<InFlight>),
}

/// Unwind guard for a cold compilation: while armed, dropping it (i.e.
/// a panic inside the pass sequence) evicts the in-flight slot and
/// delivers an error to every waiter instead of leaving them blocked.
struct FlightGuard<'a> {
    session: &'a CompileSession,
    key: CacheKey,
    flight: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Never panic inside a panic: tolerate a poisoned cache lock.
        if let Ok(mut cache) = self.session.cache.lock() {
            cache.remove(&self.key);
        }
        self.flight.fill(Err(Unsupported::new("session", "compilation panicked")));
    }
}

/// A compilation session: caches pass-manager runs and compiles model
/// batches in parallel. Thread-safe; share by reference (or wrap in an
/// `Arc` and clone the handle) across worker threads.
///
/// Sessions opened with [`CompileSession::with_cache_dir`] additionally
/// persist every compiled artifact to disk and serve later sessions —
/// including after a process restart — from those artifacts, so the
/// cold-compile cost of a given (graph, device, pass-sequence) key is
/// paid once *ever*, not once per process.
///
/// # Example
///
/// ```
/// use smartmem_core::{CacheStats, CompileSession, SmartMemPipeline};
/// use smartmem_ir::{DType, GraphBuilder};
/// use smartmem_sim::DeviceConfig;
///
/// let mut b = GraphBuilder::new("doc");
/// let x = b.input("x", &[1, 16, 32], DType::F16);
/// let w = b.weight("w", &[32, 32], DType::F16);
/// let mm = b.matmul(x, w);
/// let t = b.transpose(mm, &[0, 2, 1]);
/// b.output(t);
/// let graph = b.finish();
///
/// let session = CompileSession::new();
/// let device = DeviceConfig::snapdragon_8gen2();
/// let cold = session.compile(&SmartMemPipeline::new(), &graph, &device).unwrap();
/// let warm = session.compile(&SmartMemPipeline::new(), &graph, &device).unwrap();
/// let stats: CacheStats = session.stats();
/// assert_eq!((stats.hits, stats.misses, stats.disk_hits), (1, 1, 0));
/// assert!(std::sync::Arc::ptr_eq(&cold, &warm)); // same artifact, no recompilation
/// ```
#[derive(Default)]
pub struct CompileSession {
    cache: Mutex<HashMap<CacheKey, Slot>>,
    persist: Option<DiskCache>,
    /// Per-kernel-group refinement decisions, shared by every
    /// compilation in the session (see the `groupcache` module): cold
    /// compiles of edited or neighboring models replay layout/tuning
    /// decisions for every structurally unchanged group.
    groups: GroupCache,
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_hits: AtomicUsize,
    telemetry: CacheTelemetry,
    /// Group-cache (hits, misses) already published to the global
    /// counters. Deltas are taken under this mutex so concurrent cold
    /// compiles never publish each other's work twice.
    groups_published: Mutex<(usize, usize)>,
}

impl CompileSession {
    /// Empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Session backed by a persistent artifact cache at `dir` (created
    /// if missing).
    ///
    /// Cold compiles are written through to disk; cache misses probe
    /// the directory before running the pass sequence, so a key
    /// compiled by *any* earlier session over the same directory is
    /// served by decoding its artifact (counted in
    /// [`CacheStats::disk_hits`]). Unreadable, truncated, corrupted or
    /// version-mismatched artifacts are ignored and recompiled cold —
    /// the cache can only ever make things faster, never wrong. The
    /// LTE composition memo is persisted alongside and imported on
    /// open.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created.
    pub fn with_cache_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let mut session = CompileSession::new();
        let disk = DiskCache::open(dir.as_ref())?;
        // Seed the per-group decision cache from earlier sessions, so
        // even the very first compile of an *edited* model replays the
        // unchanged groups' decisions.
        disk.load_groups(&session.groups);
        session.persist = Some(disk);
        Ok(session)
    }

    /// The persistent cache directory, if this session has one.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(DiskCache::dir)
    }

    /// Installs a chaos-test fault oracle on the persistent cache (no
    /// effect for purely in-memory sessions). Artifact reads the plan
    /// fails behave exactly like corrupt files — the session compiles
    /// cold; writes it fails behave exactly like a full disk — the
    /// artifact is lost but the compilation is kept. Injected failures
    /// count in [`CacheStats::disk_faults`]. The first installed plan
    /// wins; later calls are ignored.
    pub fn inject_disk_faults(&self, plan: Arc<smartmem_sim::FaultPlan>) {
        if let Some(disk) = &self.persist {
            disk.set_fault_plan(plan);
        }
    }

    /// Number of artifacts currently persisted on disk (0 for purely
    /// in-memory sessions).
    pub fn disk_len(&self) -> usize {
        self.persist.as_ref().map_or(0, DiskCache::artifact_count)
    }

    /// Compiles `graph` for `device` through `framework`, returning the
    /// cached output when an identical compilation already ran in this
    /// session.
    ///
    /// Concurrent identical cold compilations are deduplicated: one
    /// caller runs the pass sequence, the rest block until the canonical
    /// `Arc` is published. `misses` counts pass-sequence executions, so
    /// a burst of N threads on one cold key records exactly 1 miss and
    /// N-1 hits.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] for operator-support gaps. Errors are not
    /// cached (they are cheap to recompute); waiters of a failing
    /// in-flight compilation receive the same error — counted in
    /// neither `hits` nor `misses` — and later callers recompute.
    pub fn compile(
        &self,
        framework: &dyn Framework,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> CompileResult {
        self.compile_keyed(framework, graph, graph_fingerprint(graph), device).0
    }

    /// [`CompileSession::compile`] with a precomputed graph fingerprint,
    /// additionally reporting whether the result was served from the
    /// cache (including waiting on another thread's in-flight run).
    ///
    /// Serving layers call this once per request on large graphs;
    /// precomputing the fingerprint at model-registration time removes
    /// the dominant per-call hashing cost from the request path.
    pub fn compile_keyed(
        &self,
        framework: &dyn Framework,
        graph: &Graph,
        graph_fp: u64,
        device: &DeviceConfig,
    ) -> (CompileResult, bool) {
        let manager = framework.passes();
        let key = CacheKey {
            graph: graph_fp,
            device: device_fingerprint(device),
            sequence: manager.sequence_id(),
            bucket: graph.sym_bucket(),
        };
        let flight = {
            let mut cache = self.cache.lock().expect("cache lock");
            match cache.get(&key) {
                Some(Slot::Ready(hit)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.hits.incr();
                    return (Ok(Arc::clone(hit)), true);
                }
                Some(Slot::InFlight(flight)) => {
                    let flight = Arc::clone(flight);
                    drop(cache);
                    let result = flight.wait();
                    // A failed in-flight run cached nothing, so its
                    // waiters hit nothing: errors count in neither
                    // `hits` (cache-served outputs) nor `misses`
                    // (pass-sequence executions).
                    let served = result.is_ok();
                    if served {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.hits.incr();
                    }
                    return (result, served);
                }
                None => {
                    let flight = Arc::new(InFlight::new());
                    cache.insert(key, Slot::InFlight(Arc::clone(&flight)));
                    flight
                }
            }
        };
        // From this point the in-flight slot is registered, so any
        // panic — in the disk probe as much as in the pass sequence —
        // must evict the slot and fail the waiters on unwind, or they
        // (and every future caller of this key) would block forever.
        let mut guard = FlightGuard { session: self, key, flight: &flight, armed: true };
        // Memory miss: probe the persistent cache (if any) before
        // paying the pass sequence. A decoded artifact is promoted to a
        // Ready slot, so the disk is only ever touched once per key per
        // session. Persisted *negative* results (the pass sequence
        // deterministically refuses this key) short-circuit the refusal
        // without a pass run; mirroring the in-memory policy they stay
        // uncached in memory and count in neither hits nor misses.
        if let Some(disk) = &self.persist {
            match disk.load(&key.artifact()) {
                Some(Ok(output)) => {
                    guard.armed = false;
                    let output = Arc::new(output);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.hits.incr();
                    self.telemetry.disk_hits.incr();
                    self.cache
                        .lock()
                        .expect("cache lock")
                        .insert(key, Slot::Ready(Arc::clone(&output)));
                    flight.fill(Ok(Arc::clone(&output)));
                    return (Ok(output), true);
                }
                Some(Err(e)) => {
                    guard.armed = false;
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.disk_hits.incr();
                    self.cache.lock().expect("cache lock").remove(&key);
                    flight.fill(Err(e.clone()));
                    return (Err(e), false);
                }
                None => {}
            }
        }
        let result = manager.run_incremental(graph, device, &self.groups).map(Arc::new);
        guard.armed = false;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.telemetry.misses.incr();
        self.publish_group_deltas();
        if let Ok(output) = &result {
            publish_pass_timings(output);
        }
        {
            let mut cache = self.cache.lock().expect("cache lock");
            match &result {
                Ok(output) => {
                    cache.insert(key, Slot::Ready(Arc::clone(output)));
                }
                Err(_) => {
                    cache.remove(&key);
                }
            }
        }
        if let Some(disk) = &self.persist {
            disk.store(&key.artifact(), result.as_deref());
            disk.save_groups_if_grown_by(&self.groups, 8);
        }
        flight.fill(result.clone());
        (result, false)
    }

    /// Compiles every (framework, graph) pair of the job matrix across
    /// `threads` workers (`0` = one per available core), returning
    /// results as `results[graph_idx][framework_idx]`.
    ///
    /// Work is distributed dynamically through an atomic cursor, so a
    /// slow model (e.g. the SD UNet) does not serialize a whole worker's
    /// share behind it.
    pub fn compile_batch(
        &self,
        frameworks: &[Box<dyn Framework>],
        graphs: &[Graph],
        device: &DeviceConfig,
        threads: usize,
    ) -> Vec<Vec<CompileResult>> {
        let jobs = frameworks.len() * graphs.len();
        if jobs == 0 {
            // Nothing to do: previously this still spawned (and joined)
            // one idle worker thread via the `jobs.max(1)` clamp below.
            return graphs.iter().map(|_| Vec::new()).collect();
        }
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        }
        .clamp(1, jobs);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CompileResult>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = cursor.fetch_add(1, Ordering::Relaxed);
                    if job >= jobs {
                        break;
                    }
                    let (gi, fi) = (job / frameworks.len(), job % frameworks.len());
                    let result = self.compile(frameworks[fi].as_ref(), &graphs[gi], device);
                    *slots[job].lock().expect("slot lock") = Some(result);
                });
            }
        });
        let mut results = Vec::with_capacity(graphs.len());
        let mut slots = slots.into_iter();
        for _ in 0..graphs.len() {
            let mut row = Vec::with_capacity(frameworks.len());
            for _ in 0..frameworks.len() {
                let slot = slots.next().expect("slot per job");
                row.push(slot.into_inner().expect("slot lock").expect("every job ran"));
            }
            results.push(row);
        }
        results
    }

    /// Adds the group-cache activity since the last publication into
    /// the global counters. The watermark mutex makes each unit of work
    /// publish exactly once no matter how cold compiles interleave.
    fn publish_group_deltas(&self) {
        let mut published = self.groups_published.lock().expect("group watermark lock");
        let now = self.groups.stats();
        self.telemetry.group_hits.add((now.hits.saturating_sub(published.0)) as u64);
        self.telemetry.group_misses.add((now.misses.saturating_sub(published.1)) as u64);
        *published = (published.0.max(now.hits), published.1.max(now.misses));
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        let groups = self.groups.stats();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            group_hits: groups.hits,
            group_misses: groups.misses,
            disk_faults: self.persist.as_ref().map_or(0, |d| d.disk_fault_count() as usize),
        }
    }

    /// Number of kernel groups with cached refinement decisions.
    pub fn group_cache_len(&self) -> usize {
        self.groups.len()
    }

    /// Number of cached compilations (in-flight entries excluded).
    pub fn len(&self) -> usize {
        self.cache
            .lock()
            .expect("cache lock")
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for CompileSession {
    /// Final exact save of the LTE memo and the per-group decision
    /// cache: intermediate write-throughs only persist them after
    /// meaningful growth (amortization), so the tail entries land here.
    fn drop(&mut self) {
        if let Some(disk) = &self.persist {
            disk.save_memo();
            disk.save_groups(&self.groups);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{SmartMemConfig, SmartMemPipeline};
    use smartmem_ir::{DType, GraphBuilder};

    fn toy(tag: &str) -> Graph {
        let mut b = GraphBuilder::new(tag.to_string());
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x, w);
        let t = b.transpose(mm, &[0, 2, 1]);
        let out = b.softmax(t, 2);
        b.output(out);
        b.finish()
    }

    #[test]
    fn cache_hits_on_identical_compiles() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let fw = SmartMemPipeline::new();
        let g = toy("toy");
        let cold = session.compile(&fw, &g, &device).unwrap();
        let warm = session.compile(&fw, &g, &device).unwrap();
        let stats = session.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (1, 1, 0));
        assert!(Arc::ptr_eq(&cold, &warm));
    }

    #[test]
    fn cache_separates_configs_devices_and_graphs() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let g = toy("toy");
        session.compile(&SmartMemPipeline::new(), &g, &device).unwrap();
        session
            .compile(&SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level()), &g, &device)
            .unwrap();
        session.compile(&SmartMemPipeline::new(), &g, &DeviceConfig::snapdragon_835()).unwrap();
        // Same structure under a different graph name still hits: the
        // name is part of the Debug rendering, so it does not — keep the
        // expectation explicit.
        session.compile(&SmartMemPipeline::new(), &toy("other"), &device).unwrap();
        let stats = session.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (0, 4, 0));
        assert_eq!(session.len(), 4);
    }

    #[test]
    fn concurrent_cold_compiles_dedup_to_one_miss() {
        // 8 threads hammer the same cold fingerprint; single-flight
        // dedup must run the pass sequence exactly once.
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let g = toy("hammer");
        let fp = graph_fingerprint(&g);
        let outputs: Vec<Arc<CompileOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let fw = SmartMemPipeline::new();
                        session.compile_keyed(&fw, &g, fp, &device).0.unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let stats = session.stats();
        assert_eq!((stats.hits, stats.misses, stats.disk_hits), (7, 1, 0));
        assert_eq!(session.len(), 1);
        for o in &outputs[1..] {
            assert!(Arc::ptr_eq(&outputs[0], o), "all callers share the canonical Arc");
        }
    }

    #[test]
    fn panicking_compile_does_not_wedge_the_key() {
        use crate::pass::{CompileCtx, Pass, PassManager};
        use std::sync::atomic::{AtomicBool, Ordering};

        struct PanicOncePass(Arc<AtomicBool>);
        impl Pass for PanicOncePass {
            fn name(&self) -> &'static str {
                "panic-once"
            }
            fn run(&self, _ctx: &mut CompileCtx) -> Result<(), Unsupported> {
                assert!(self.0.swap(true, Ordering::SeqCst), "first run panics");
                Ok(())
            }
        }
        struct PanicOnce(Arc<AtomicBool>);
        impl Framework for PanicOnce {
            fn name(&self) -> &str {
                "PanicOnce"
            }
            fn passes(&self) -> PassManager {
                PassManager::new("PanicOnce").then(PanicOncePass(Arc::clone(&self.0)))
            }
        }

        let session = Arc::new(CompileSession::new());
        let device = DeviceConfig::snapdragon_8gen2();
        let fw = PanicOnce(Arc::new(AtomicBool::new(false)));
        let g = toy("panic");
        let fp = graph_fingerprint(&g);
        let panicked = std::thread::scope(|scope| {
            scope.spawn(|| session.compile_keyed(&fw, &g, fp, &device)).join()
        });
        assert!(panicked.is_err(), "the first compile must panic");
        // The key must be clean again: this call runs the (now
        // well-behaved) sequence instead of blocking on a dead flight.
        let (result, hit) = session.compile_keyed(&fw, &g, fp, &device);
        assert!(result.is_ok());
        assert!(!hit);
        assert_eq!(session.len(), 1);
    }

    #[test]
    fn compile_keyed_reports_hits() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let fw = SmartMemPipeline::new();
        let g = toy("keyed");
        let fp = graph_fingerprint(&g);
        let (cold, hit) = session.compile_keyed(&fw, &g, fp, &device);
        assert!(!hit);
        let (warm, hit) = session.compile_keyed(&fw, &g, fp, &device);
        assert!(hit);
        assert!(Arc::ptr_eq(&cold.unwrap(), &warm.unwrap()));
    }

    #[test]
    fn cold_compiles_publish_global_telemetry() {
        let registry = smartmem_telemetry::global();
        // Other tests in this binary compile concurrently, so assert
        // deltas as lower bounds.
        let misses_before = registry.counter("compile.cache_misses").get();
        let hits_before = registry.counter("compile.cache_hits").get();
        let cold_before = registry.histogram("compile.cold_ns").snapshot().count;
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let fw = SmartMemPipeline::new();
        let g = toy("telemetry");
        session.compile(&fw, &g, &device).unwrap();
        session.compile(&fw, &g, &device).unwrap();
        assert!(registry.counter("compile.cache_misses").get() > misses_before);
        assert!(registry.counter("compile.cache_hits").get() > hits_before);
        assert!(registry.histogram("compile.cold_ns").snapshot().count > cold_before);
        let flat = smartmem_telemetry::flatten(&registry.snapshot());
        assert!(
            flat.iter().any(|(n, _)| n.starts_with("compile.pass.") && n.ends_with("_ns.count")),
            "per-pass timing histograms flatten for the bench exporter"
        );
    }

    #[test]
    fn bucket_change_replays_every_group() {
        use smartmem_ir::BucketTable;
        // The tentpole contract of shape bucketing: a symbolic model
        // compiled at a second bucket is a whole-artifact miss (the
        // padded iteration space really differs) but a *group-cache
        // near-no-op* — every kernel group's content hash, layout
        // context and tuning context are ceiling-padded and therefore
        // bucket-invariant, so all of them replay. Exact counts, not
        // bounds: one regressed group would hide in a `>=`.
        let table = BucketTable::new(vec![32, 64, 128]).unwrap();
        let build = |seq: usize| {
            let mut b = GraphBuilder::new("sym-decode");
            let x = b.input("x", &[1, seq, 32], DType::F16);
            let w = b.weight("w", &[32, 32], DType::F16);
            let mm = b.matmul(x, w);
            let t = b.transpose(mm, &[0, 2, 1]);
            let sm = b.softmax(t, 2);
            let mm2 = b.matmul(sm, mm);
            b.output(mm2);
            b.finish().with_sym_dim("seq", &table, seq).unwrap()
        };
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let fw = SmartMemPipeline::new();
        session.compile(&fw, &build(48), &device).unwrap(); // bucket 64
        let cold = session.stats();
        assert_eq!(cold.group_hits, 0, "first bucket compiles cold");
        let groups = cold.group_misses;
        assert!(groups > 0, "the model must produce kernel groups");
        session.compile(&fw, &build(100), &device).unwrap(); // bucket 128
        let stats = session.stats();
        assert_eq!(stats.misses, 2, "each bucket owns one artifact");
        assert_eq!(stats.group_hits, groups, "every shared group replays across the bucket change");
        assert_eq!(stats.group_misses, groups, "no group re-refines at the new bucket");
    }

    #[test]
    fn batch_compile_matches_direct() {
        let session = CompileSession::new();
        let device = DeviceConfig::snapdragon_8gen2();
        let frameworks: Vec<Box<dyn Framework>> = vec![
            Box::new(SmartMemPipeline::new()),
            Box::new(SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level())),
        ];
        let graphs = vec![toy("a"), toy("b")];
        let results = session.compile_batch(&frameworks, &graphs, &device, 0);
        assert_eq!(results.len(), 2);
        for (gi, row) in results.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (fi, res) in row.iter().enumerate() {
                let direct = frameworks[fi].optimize(&graphs[gi], &device).unwrap();
                let batched = res.as_ref().unwrap();
                assert_eq!(direct.stats, batched.optimized.stats);
            }
        }
    }
}
