//! Auto-tuning of GPU execution configurations with a genetic algorithm
//! (§3.3 "Other optimizations"; the mechanism is inherited from
//! DNNFusion).
//!
//! A configuration fixes workgroup dimensions, tile shape and the
//! unrolling factor; its quality is summarized as an *achieved
//! utilization* of peak compute throughput, evaluated analytically from
//! tile fit (padding waste on the iteration space), occupancy, and
//! unrolling. The GA is deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::Op;

/// Discrete tile-size choices per dimension.
const TILES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Workgroup shapes (threads per axis).
const WORKGROUPS: [(usize, usize); 6] = [(4, 4), (8, 4), (8, 8), (16, 8), (16, 16), (32, 8)];
/// Reduction-loop unroll factors.
const UNROLLS: [usize; 4] = [1, 2, 4, 8];

/// One GPU execution configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecConfig {
    /// Output tile `(tile_m, tile_n)` over the last two iteration dims.
    pub tile: (usize, usize),
    /// Reduction-loop tile.
    pub tile_k: usize,
    /// Workgroup shape.
    pub workgroup: (usize, usize),
    /// Unroll factor of the innermost loop.
    pub unroll: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { tile: (8, 8), tile_k: 4, workgroup: (8, 8), unroll: 1 }
    }
}

impl Encode for ExecConfig {
    fn encode(&self, w: &mut Writer) {
        self.tile.encode(w);
        self.tile_k.encode(w);
        self.workgroup.encode(w);
        self.unroll.encode(w);
    }
}

impl Decode for ExecConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ExecConfig {
            tile: Decode::decode(r)?,
            tile_k: Decode::decode(r)?,
            workgroup: Decode::decode(r)?,
            unroll: Decode::decode(r)?,
        })
    }
}

/// Base achievable utilization per operator kind: compute-dense kernels
/// can approach peak; memory-shuffling kernels cannot.
pub fn base_utilization(op: &Op) -> f64 {
    // Calibrated against the paper's roofline (Fig. 12): even SmartMem
    // achieves only 7-18% of the 2 TMACs/s peak on mobile, so base
    // utilizations are far below desktop-GPU intuition.
    match op {
        Op::Conv2d { .. } => 0.30,
        Op::MatMul { .. } => 0.28,
        Op::Pool2d { .. } | Op::Reduce { .. } => 0.18,
        Op::LayerNorm { .. } | Op::InstanceNorm | Op::Softmax { .. } => 0.16,
        Op::Unary { .. } | Op::Binary { .. } | Op::Concat { .. } => 0.14,
        _ => 0.10, // layout transforms, gather, slice, split
    }
}

/// Analytic utilization of a configuration for an iteration space whose
/// last two extents are `(m, n)`.
pub fn utilization(op: &Op, m: usize, n: usize, cfg: &ExecConfig) -> f64 {
    let fit = |extent: usize, tile: usize| -> f64 {
        if extent == 0 || tile == 0 {
            return 1.0;
        }
        let padded = extent.div_ceil(tile) * tile;
        extent as f64 / padded as f64
    };
    let threads = cfg.workgroup.0 * cfg.workgroup.1;
    let occupancy = if threads < 32 {
        0.6
    } else if threads <= 256 {
        1.0
    } else {
        0.92
    };
    let unroll_factor = match cfg.unroll {
        1 => 0.86,
        2 => 0.94,
        4 => 1.0,
        _ => 0.97,
    };
    // Workgroup must also divide the tile grid reasonably.
    let grid_fit = fit(m.div_ceil(cfg.tile.0).max(1), cfg.workgroup.0).clamp(0.7, 1.0);
    // Memory reuse: small effective tiles re-stream operands once per
    // strip; reward output tiles up to 64x64.
    let eff_m = (cfg.tile.0 * cfg.workgroup.0).min(64).min(m.max(1));
    let eff_n = (cfg.tile.1 * cfg.workgroup.1).min(64).min(n.max(1));
    let reuse = (((eff_m * eff_n) as f64) / 4096.0).powf(0.3).clamp(0.35, 1.0);
    (base_utilization(op)
        * fit(m, cfg.tile.0)
        * fit(n, cfg.tile.1)
        * occupancy
        * unroll_factor
        * grid_fit
        * reuse)
        .clamp(0.02, 0.95)
}

/// Genome: indices into the discrete choice tables.
#[derive(Clone, Copy, Debug)]
struct Genome {
    tile_m: usize,
    tile_n: usize,
    tile_k: usize,
    wg: usize,
    unroll: usize,
}

impl Genome {
    fn to_config(self) -> ExecConfig {
        ExecConfig {
            tile: (TILES[self.tile_m], TILES[self.tile_n]),
            tile_k: TILES[self.tile_k],
            workgroup: WORKGROUPS[self.wg],
            unroll: UNROLLS[self.unroll],
        }
    }

    fn random(rng: &mut StdRng) -> Genome {
        Genome {
            tile_m: rng.random_range(0..TILES.len()),
            tile_n: rng.random_range(0..TILES.len()),
            tile_k: rng.random_range(0..TILES.len()),
            wg: rng.random_range(0..WORKGROUPS.len()),
            unroll: rng.random_range(0..UNROLLS.len()),
        }
    }

    fn mutate(mut self, rng: &mut StdRng) -> Genome {
        match rng.random_range(0..5) {
            0 => self.tile_m = rng.random_range(0..TILES.len()),
            1 => self.tile_n = rng.random_range(0..TILES.len()),
            2 => self.tile_k = rng.random_range(0..TILES.len()),
            3 => self.wg = rng.random_range(0..WORKGROUPS.len()),
            _ => self.unroll = rng.random_range(0..UNROLLS.len()),
        }
        self
    }

    fn crossover(a: Genome, b: Genome, rng: &mut StdRng) -> Genome {
        Genome {
            tile_m: if rng.random_bool(0.5) { a.tile_m } else { b.tile_m },
            tile_n: if rng.random_bool(0.5) { a.tile_n } else { b.tile_n },
            tile_k: if rng.random_bool(0.5) { a.tile_k } else { b.tile_k },
            wg: if rng.random_bool(0.5) { a.wg } else { b.wg },
            unroll: if rng.random_bool(0.5) { a.unroll } else { b.unroll },
        }
    }
}

/// Genetic-algorithm tuner for one kernel's execution configuration.
#[derive(Clone, Debug)]
pub struct GaTuner {
    /// Population size per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// RNG seed (results are deterministic per seed).
    pub seed: u64,
}

impl Default for GaTuner {
    fn default() -> Self {
        GaTuner { population: 12, generations: 8, seed: 0x5eed }
    }
}

/// Finalizer of the splitmix64 generator: a cheap, high-quality 64-bit
/// mixer used to derive independent GA seeds from (base seed, salt).
/// Plain XOR is not enough — two groups whose salts differ in one bit
/// would explore almost perfectly correlated populations.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl GaTuner {
    /// Tunes a configuration for `op` with iteration extents `(m, n)`;
    /// returns the best config and its utilization. Equivalent to
    /// [`GaTuner::tune_salted`] with a zero salt.
    pub fn tune(&self, op: &Op, m: usize, n: usize) -> (ExecConfig, f64) {
        self.tune_salted(op, m, n, 0)
    }

    /// Like [`GaTuner::tune`], but mixes `salt` into the RNG seed.
    ///
    /// The incremental compiler salts with the kernel group's content
    /// hash, which makes the search deterministic per *(seed, op,
    /// extents, group content)* — independent of where the group sits in
    /// the model and of which thread tunes it, so parallel and serial
    /// tuning produce identical configurations and cached decisions
    /// replay exactly.
    pub fn tune_salted(&self, op: &Op, m: usize, n: usize, salt: u64) -> (ExecConfig, f64) {
        let mut rng =
            StdRng::seed_from_u64(splitmix64(self.seed ^ salt) ^ ((m as u64) << 24) ^ (n as u64));
        let mut pop: Vec<Genome> = (0..self.population).map(|_| Genome::random(&mut rng)).collect();
        // Always include the untuned default so tuning can never lose to
        // it (elitism keeps it alive while it stays best).
        pop[0] = Genome { tile_m: 3, tile_n: 3, tile_k: 2, wg: 2, unroll: 0 };
        debug_assert_eq!(pop[0].to_config(), ExecConfig::default());
        let fitness = |g: &Genome| {
            let cfg = g.to_config();
            // Equal-utilization configurations can differ by up to 8x in
            // operand re-streaming (`estimate::operand_passes` re-reads
            // weights once per output strip when the effective tile does
            // not cover the iteration space), so break ties toward full
            // coverage. The bonus is far below any utilization step, so
            // it never overrides a real utilization difference.
            let eff = (cfg.tile.0 * cfg.workgroup.0) as f64 * (cfg.tile.1 * cfg.workgroup.1) as f64;
            let coverage = (eff / (m.max(1) * n.max(1)) as f64).min(1.0);
            utilization(op, m, n, &cfg) + 1e-6 * coverage
        };
        let mut best = pop[0];
        let mut best_fit = fitness(&best);
        for _ in 0..self.generations {
            let mut scored: Vec<(f64, Genome)> = pop.iter().map(|g| (fitness(g), *g)).collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite fitness"));
            if scored[0].0 > best_fit {
                best_fit = scored[0].0;
                best = scored[0].1;
            }
            // Elitism: keep top quarter, refill with crossover+mutation.
            let elite = (self.population / 4).max(1);
            let mut next: Vec<Genome> = scored.iter().take(elite).map(|(_, g)| *g).collect();
            while next.len() < self.population {
                let a = scored[rng.random_range(0..elite.max(2).min(scored.len()))].1;
                let b = scored[rng.random_range(0..scored.len())].1;
                let mut child = Genome::crossover(a, b, &mut rng);
                if rng.random_bool(0.4) {
                    child = child.mutate(&mut rng);
                }
                next.push(child);
            }
            pop = next;
        }
        let _ = best_fit;
        // Deterministic polish over the (workgroup, tile) plane: the GA
        // samples only a fraction of it, and ties there decide whether
        // the effective tile covers the iteration space (the coverage
        // bonus above). Keeps the GA's tile_k/unroll choices.
        let mut best_score = fitness(&best);
        for wg in 0..WORKGROUPS.len() {
            for tile_m in 0..TILES.len() {
                for tile_n in 0..TILES.len() {
                    let cand = Genome { tile_m, tile_n, wg, ..best };
                    let score = fitness(&cand);
                    if score > best_score {
                        best_score = score;
                        best = cand;
                    }
                }
            }
        }
        let cfg = best.to_config();
        (cfg, utilization(op, m, n, &cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul() -> Op {
        Op::MatMul { trans_a: false, trans_b: false }
    }

    #[test]
    fn utilization_rewards_divisible_tiles() {
        let good = ExecConfig { tile: (8, 8), ..Default::default() };
        let bad = ExecConfig { tile: (64, 64), ..Default::default() };
        // 56x56 iteration space: 64-tiles waste ~23% per axis.
        assert!(utilization(&matmul(), 56, 56, &good) > utilization(&matmul(), 56, 56, &bad));
    }

    #[test]
    fn utilization_bounded() {
        for &(m, n) in &[(1, 1), (7, 13), (224, 224), (4096, 4096)] {
            let u = utilization(&matmul(), m, n, &ExecConfig::default());
            assert!((0.02..=0.95).contains(&u));
        }
    }

    #[test]
    fn tuner_beats_or_matches_default() {
        let tuner = GaTuner::default();
        for &(m, n) in &[(49, 49), (197, 64), (56, 56), (3136, 96)] {
            let (cfg, fit) = tuner.tune(&matmul(), m, n);
            let default_fit = utilization(&matmul(), m, n, &ExecConfig::default());
            assert!(fit >= default_fit - 1e-9, "tuned {fit} < default {default_fit} for {m}x{n}");
            let _ = cfg;
        }
    }

    #[test]
    fn tuner_is_deterministic() {
        let t = GaTuner::default();
        let (a, fa) = t.tune(&matmul(), 197, 197);
        let (b, fb) = t.tune(&matmul(), 197, 197);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn salted_tuning_is_deterministic_and_never_worse_than_default() {
        let t = GaTuner::default();
        // Zero salt is the plain entry point.
        assert_eq!(t.tune(&matmul(), 197, 64), t.tune_salted(&matmul(), 197, 64, 0));
        for salt in [0u64, 1, 0xdead_beef, u64::MAX] {
            let (a, fa) = t.tune_salted(&matmul(), 197, 64, salt);
            let (b, fb) = t.tune_salted(&matmul(), 197, 64, salt);
            assert_eq!(a, b, "same salt must reproduce the same config");
            assert_eq!(fa, fb);
            // The default genome is seeded into every population, so no
            // salt can lose to the untuned configuration.
            let default_fit = utilization(&matmul(), 197, 64, &ExecConfig::default());
            assert!(fa >= default_fit - 1e-9, "salt {salt:#x} lost to default");
        }
    }

    #[test]
    fn compute_ops_have_higher_base_than_transforms() {
        assert!(
            base_utilization(&Op::Conv2d { stride: (1, 1), padding: (0, 0), groups: 1 })
                > base_utilization(&Op::Transpose { perm: vec![1, 0] })
        );
    }
}
