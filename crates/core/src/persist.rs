//! The on-disk artifact cache behind [`crate::CompileSession`].
//!
//! SmartMem's thesis is that redundant layout-transformation work should
//! be eliminated once and never repaid; the in-memory compilation cache
//! applies that principle to compilation itself but forgets everything
//! at process exit. This module adds the next level of the hierarchy:
//! every cold compile is written through to
//! `<cache-dir>/art-<graph>-<device>-<sequence>-<bucket>.smem`, and a
//! later
//! session (same process or a restart) serves the same key by decoding
//! the artifact instead of re-running the pass sequence.
//!
//! # File format
//!
//! ```text
//! magic    b"SMEM"              4 bytes
//! version  u32 LE               bumped on any wire-format change
//! probe    u64 LE               DefaultHasher digest of a fixed
//!                               sentinel — detects a std hasher change
//!                               (fingerprints would no longer match)
//! length   u64 LE               payload byte count
//! checksum u64 LE               FNV-1a over the payload
//! payload  wire-encoded value   CompileOutput / LTE memo entries
//! ```
//!
//! Every safeguard fails *open*: a missing, truncated, corrupted,
//! wrong-version or wrong-probe file is treated as a cache miss and the
//! session falls back to a clean cold compile (then overwrites the bad
//! artifact on write-through). Writes go to a unique temp file in the
//! same directory followed by an atomic rename, so concurrent sessions
//! and crashed processes can never leave a half-written artifact under
//! a valid name.
//!
//! Alongside the artifacts, the cache persists the LTE
//! composition/simplification memo (`lte-memo.smem`) so a warm restart
//! also skips the *first-occurrence* strength-reduction cost, and the
//! per-kernel-group decision cache (`group-cache.smem`, see the
//! `groupcache` module) so a restarted process replays layout and
//! tuning decisions even for models it has never compiled — as long as
//! individual kernel groups match. Both side files use the same
//! header/probe format as the artifacts and are only rewritten when
//! their generation counter moved since the last save.

use crate::groupcache::{GroupCache, GroupDecisions};
use crate::lte::{lte_memo_export, lte_memo_generation, lte_memo_import};
use crate::pass::CompileOutput;
use crate::pipeline::Unsupported;
use smartmem_index::IndexMap;
use smartmem_ir::wire::{decode_from, encode_to_vec, Decode, Encode, Reader, WireError, Writer};
use smartmem_sim::{FaultKind, FaultPlan};
use std::collections::hash_map::DefaultHasher;
use std::fs;
use std::hash::Hasher;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Artifact-file magic.
const MAGIC: [u8; 4] = *b"SMEM";
/// Current format version. Bump on any change to the wire encoding of
/// the persisted types. v3: symbolic-dim metadata on graphs and the
/// canonical map digest on `EdgeRead`.
const VERSION: u32 = 3;
/// Header length: magic + version + probe + length + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Digest of a fixed sentinel under the std hasher, folded with the
/// optimizer's build fingerprint. Two invalidation triggers share this
/// header field:
///
/// * Cache keys and LTE memo fingerprints are `DefaultHasher` digests,
///   which the std library does not guarantee stable across releases —
///   hashing the sentinel turns "the hasher changed under us" from
///   silent key mismatches into an explicit whole-file invalidation.
/// * `SMARTMEM_BUILD_FINGERPRINT` (emitted by this crate's build
///   script) digests every optimizer source file. Cache keys only
///   cover pass names + parameters, so without this a rebuilt binary
///   with *changed pass logic* would serve artifacts computed by the
///   old code; with it, any optimizer edit invalidates every artifact
///   and the cache recompiles cold.
fn hasher_probe() -> u64 {
    let mut h = DefaultHasher::new();
    h.write(b"smartmem-persist-probe");
    h.write(env!("SMARTMEM_BUILD_FINGERPRINT").as_bytes());
    h.finish()
}

/// FNV-1a over the payload (integrity check; not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// One persisted compilation result: tag 0 + artifact, or tag 1 + the
// deterministic `Unsupported` refusal this key always produces. The
// two functions below are the single definition of that layout — keep
// them adjacent.

fn encode_result(result: Result<&CompileOutput, &Unsupported>) -> Vec<u8> {
    let mut w = Writer::new();
    match result {
        Ok(output) => {
            w.put_u8(0);
            output.encode(&mut w);
        }
        Err(e) => {
            w.put_u8(1);
            e.encode(&mut w);
        }
    }
    w.into_bytes()
}

fn decode_result(payload: &[u8]) -> Result<Result<CompileOutput, Unsupported>, WireError> {
    let mut r = Reader::new(payload);
    let result = match r.get_u8()? {
        0 => Ok(CompileOutput::decode(&mut r)?),
        1 => Err(Unsupported::decode(&mut r)?),
        tag => return Err(WireError::BadTag { ty: "PersistedResult", tag }),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(result)
}

/// Key of one persisted artifact — mirrors the session's in-memory
/// cache key (graph/device fingerprints + pass-sequence id + shape
/// bucket). The bucket is derivable from the graph fingerprint but kept
/// explicit so per-bucket artifacts of one symbolic model are
/// first-class: visible in the filename, and a new bucket can never
/// alias an existing artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ArtifactKey {
    pub graph: u64,
    pub device: u64,
    pub sequence: u64,
    pub bucket: u64,
}

/// Handle on one cache directory.
#[derive(Debug)]
pub(crate) struct DiskCache {
    dir: PathBuf,
    /// LTE memo generation at the last save — skips rewriting the memo
    /// file when nothing changed since. A generation counter, not a
    /// length: lengths only proxy change while insertion is the sole
    /// mutation, and silently go stale the day it is not.
    memo_saved_gen: AtomicU64,
    /// Per-group decision cache generation at the last save.
    groups_saved_gen: AtomicU64,
    /// Unique temp-file suffix counter (plus the pid) for atomic writes.
    tmp_seq: AtomicUsize,
    /// Optional chaos-test fault oracle: when set, payload reads and
    /// writes consult it and may error artificially. Reads that fault
    /// behave exactly like a corrupt file (cold compile); writes that
    /// fault behave exactly like a full disk (artifact lost, compile
    /// kept) — the injected failures exercise the same fail-open paths
    /// real I/O errors take.
    faults: OnceLock<Arc<FaultPlan>>,
    /// Injected I/O faults so far (surfaces as `CacheStats::disk_faults`).
    disk_faults: AtomicU64,
}

/// Site ids for the cache-I/O fault streams: reads and writes draw
/// from independent deterministic sequences.
const FAULT_SITE_READ: usize = 0;
const FAULT_SITE_WRITE: usize = 1;

impl DiskCache {
    /// Opens (creating if needed) a cache directory and imports the
    /// persisted LTE memo.
    pub(crate) fn open(dir: &Path) -> io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        let cache = DiskCache {
            dir: dir.to_path_buf(),
            memo_saved_gen: AtomicU64::new(0),
            groups_saved_gen: AtomicU64::new(0),
            tmp_seq: AtomicUsize::new(0),
            faults: OnceLock::new(),
            disk_faults: AtomicU64::new(0),
        };
        if let Some(payload) = cache.read_payload(&cache.memo_path()) {
            if let Ok(entries) = decode_from::<Vec<(u64, IndexMap)>>(&payload) {
                lte_memo_import(entries);
            }
        }
        cache.memo_saved_gen.store(lte_memo_generation(), Ordering::Relaxed);
        Ok(cache)
    }

    /// The cache directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs a fault oracle consulted by every payload read/write.
    /// First installation wins; later calls are ignored (the cache may
    /// be shared).
    pub(crate) fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        let _ = self.faults.set(plan);
    }

    /// Injected disk I/O faults so far.
    pub(crate) fn disk_fault_count(&self) -> u64 {
        self.disk_faults.load(Ordering::Relaxed)
    }

    /// Draws from the fault oracle for one I/O `site`; counts a fault
    /// when it fires.
    fn io_faulted(&self, site: usize) -> bool {
        let faulted = self.faults.get().is_some_and(|plan| plan.roll(FaultKind::CacheDirIo, site));
        if faulted {
            self.disk_faults.fetch_add(1, Ordering::Relaxed);
        }
        faulted
    }

    fn artifact_path(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(format!(
            "art-{:016x}-{:016x}-{:016x}-{:016x}.smem",
            key.graph, key.device, key.sequence, key.bucket
        ))
    }

    fn memo_path(&self) -> PathBuf {
        self.dir.join("lte-memo.smem")
    }

    fn groups_path(&self) -> PathBuf {
        self.dir.join("group-cache.smem")
    }

    /// Number of artifact files currently on disk (diagnostics only).
    pub(crate) fn artifact_count(&self) -> usize {
        fs::read_dir(&self.dir).map_or(0, |entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| {
                    e.file_name().to_string_lossy().starts_with("art-")
                        && e.file_name().to_string_lossy().ends_with(".smem")
                })
                .count()
        })
    }

    /// Reads and verifies one file, returning its payload. `None` on
    /// any failure — missing file, bad magic/version/probe, truncation,
    /// checksum mismatch — because every failure means the same thing
    /// to the caller: not cached, compile cold.
    fn read_payload(&self, path: &Path) -> Option<Vec<u8>> {
        if self.io_faulted(FAULT_SITE_READ) {
            return None;
        }
        let bytes = fs::read(path).ok()?;
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            return None;
        }
        let field = |at: usize| -> [u8; 8] { bytes[at..at + 8].try_into().expect("8 bytes") };
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return None;
        }
        if u64::from_le_bytes(field(8)) != hasher_probe() {
            return None;
        }
        let length = u64::from_le_bytes(field(16));
        let checksum = u64::from_le_bytes(field(24));
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != length || fnv1a(payload) != checksum {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Atomically writes `payload` under a verified header. Best-effort:
    /// an I/O error (full disk, permissions) loses the artifact but
    /// never the compilation.
    fn write_payload(&self, path: &Path, payload: &[u8]) {
        if self.io_faulted(FAULT_SITE_WRITE) {
            return;
        }
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&hasher_probe().to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&fnv1a(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.sync_all()?;
            fs::rename(&tmp, path)
        };
        if write().is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Loads and decodes the artifact for `key`, or `None` when absent
    /// or unusable (any corruption falls back to a cold compile).
    ///
    /// `Some(Err(_))` is a persisted *negative* result: the pass
    /// sequence deterministically rejects this (graph, device,
    /// sequence) key, so rerunning it would only repay the refusal.
    pub(crate) fn load(&self, key: &ArtifactKey) -> Option<Result<CompileOutput, Unsupported>> {
        let payload = self.read_payload(&self.artifact_path(key))?;
        decode_result(&payload).ok()
    }

    /// Writes a compilation result (positive or negative) through to
    /// disk and opportunistically refreshes the persisted LTE memo.
    pub(crate) fn store(&self, key: &ArtifactKey, result: Result<&CompileOutput, &Unsupported>) {
        self.write_payload(&self.artifact_path(key), &encode_result(result));
        // Nearly every cold compile in a zoo batch grows the memo;
        // exporting + rewriting the whole memo file per compile would
        // be O(n²), so intermediate saves only fire after meaningful
        // growth. The session's Drop performs the exact final save.
        self.save_memo_if_grown_by(256);
    }

    /// Persists the LTE memo when it changed by more than `slack`
    /// generations since the last save (`0` = any change).
    fn save_memo_if_grown_by(&self, slack: u64) {
        let generation = lte_memo_generation();
        let saved = self.memo_saved_gen.load(Ordering::Relaxed);
        if generation.saturating_sub(saved) <= slack {
            return;
        }
        self.save_memo();
    }

    /// Persists the LTE memo when it changed since the last save; a
    /// memo identical to the one already on disk is not rewritten.
    pub(crate) fn save_memo(&self) {
        let generation = lte_memo_generation();
        if self.memo_saved_gen.swap(generation, Ordering::Relaxed) == generation {
            return;
        }
        self.write_payload(&self.memo_path(), &encode_to_vec(&lte_memo_export()));
    }

    /// Imports the persisted per-group decision cache into `groups` and
    /// records the post-import generation as saved (re-writing what was
    /// just read would be a wasted file churn).
    pub(crate) fn load_groups(&self, groups: &GroupCache) {
        if let Some(payload) = self.read_payload(&self.groups_path()) {
            if let Ok(entries) = decode_from::<Vec<(u64, GroupDecisions)>>(&payload) {
                groups.import(entries);
            }
        }
        self.groups_saved_gen.store(groups.generation(), Ordering::Relaxed);
    }

    /// Persists `groups` when it changed by more than `slack`
    /// generations since the last save (`0` = any change).
    pub(crate) fn save_groups_if_grown_by(&self, groups: &GroupCache, slack: u64) {
        let generation = groups.generation();
        let saved = self.groups_saved_gen.load(Ordering::Relaxed);
        if generation.saturating_sub(saved) <= slack {
            return;
        }
        self.save_groups(groups);
    }

    /// Persists `groups` when it changed since the last save.
    pub(crate) fn save_groups(&self, groups: &GroupCache) {
        let generation = groups.generation();
        if self.groups_saved_gen.swap(generation, Ordering::Relaxed) == generation {
            return;
        }
        self.write_payload(&self.groups_path(), &encode_to_vec(&groups.export()));
    }
}
