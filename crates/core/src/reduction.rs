//! Reduction-dimension analysis (§3.2.2).
//!
//! The *reduction dimension(s)* of an operand are the dimensions along
//! which elements are aggregated (e.g. `k` for both operands of a
//! `MatMul`). SmartMem's layout-selection heuristic stores data
//! contiguously along the consumer's reduction dimension, enabling
//! SIMD loads and good locality for the aggregation loop.

use smartmem_ir::{Op, Shape};

/// Reduction dimensions of operand `operand_idx` of `op`, expressed as
/// logical dimension indices of that operand (`operand_shape`).
///
/// Operators without aggregation (element-wise, layout transforms,
/// selection) have no reduction dimensions; their layout preference is
/// dictated by their consumers instead (Fig. 4: `L1`/`L2`).
pub fn reduction_dims(op: &Op, operand_idx: usize, operand_shape: &Shape) -> Vec<usize> {
    let rank = operand_shape.rank();
    match op {
        Op::MatMul { trans_a, trans_b } => {
            if rank < 2 {
                return Vec::new();
            }
            match operand_idx {
                // A: K is the last dim (or rank-2 when transposed).
                0 => vec![if *trans_a { rank - 2 } else { rank - 1 }],
                // B: K is rank-2 (or last when transposed).
                1 => vec![if *trans_b { rank - 1 } else { rank - 2 }],
                _ => Vec::new(),
            }
        }
        Op::Conv2d { .. } => match operand_idx {
            // x [N, C, H, W]: input channels are aggregated (the kernel
            // window also aggregates but C is the long SIMD-friendly one).
            0 => vec![1],
            // w [O, C/g, KH, KW]: input-channel dim.
            1 => vec![1],
            _ => Vec::new(),
        },
        Op::LayerNorm { axes } => axes.clone(),
        Op::InstanceNorm => {
            if rank == 4 {
                vec![2, 3]
            } else {
                Vec::new()
            }
        }
        Op::Softmax { axis } => vec![*axis],
        Op::Reduce { axes, .. } => axes.clone(),
        Op::Pool2d { .. } => {
            if rank == 4 {
                vec![2, 3]
            } else {
                Vec::new()
            }
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::ReduceKind;

    #[test]
    fn matmul_reduces_over_k() {
        let op = Op::MatMul { trans_a: false, trans_b: false };
        let a = Shape::new(vec![8, 64, 32]);
        let b = Shape::new(vec![8, 32, 16]);
        assert_eq!(reduction_dims(&op, 0, &a), vec![2]); // K = last of A
        assert_eq!(reduction_dims(&op, 1, &b), vec![1]); // K = rank-2 of B
    }

    #[test]
    fn matmul_transposed_operands() {
        let op = Op::MatMul { trans_a: true, trans_b: true };
        let a = Shape::new(vec![32, 64]); // K x M
        let b = Shape::new(vec![16, 32]); // N x K
        assert_eq!(reduction_dims(&op, 0, &a), vec![0]);
        assert_eq!(reduction_dims(&op, 1, &b), vec![1]);
    }

    #[test]
    fn conv_reduces_over_channels() {
        let op = Op::Conv2d { stride: (1, 1), padding: (0, 0), groups: 1 };
        let x = Shape::new(vec![1, 64, 56, 56]);
        assert_eq!(reduction_dims(&op, 0, &x), vec![1]);
    }

    #[test]
    fn norms_and_reductions() {
        let x = Shape::new(vec![1, 196, 768]);
        assert_eq!(reduction_dims(&Op::LayerNorm { axes: vec![2] }, 0, &x), vec![2]);
        assert_eq!(reduction_dims(&Op::Softmax { axis: 1 }, 0, &x), vec![1]);
        assert_eq!(
            reduction_dims(
                &Op::Reduce { kind: ReduceKind::Mean, axes: vec![0, 2], keep_dims: false },
                0,
                &x
            ),
            vec![0, 2]
        );
    }

    #[test]
    fn elementwise_has_none() {
        let x = Shape::new(vec![4, 4]);
        assert!(reduction_dims(&Op::Unary { kind: smartmem_ir::UnaryKind::Relu }, 0, &x).is_empty());
        assert!(reduction_dims(&Op::Reshape { shape: vec![16] }, 0, &x).is_empty());
    }
}
