//! Kernel-group-granular incremental compilation caching.
//!
//! The session-level compilation cache is all-or-nothing: editing one
//! layer of a model changes the graph fingerprint and repays the whole
//! pass sequence. But the expensive tail of that sequence — layout
//! selection and GA tuning — makes its decisions *per kernel group*,
//! and a one-layer edit leaves every other group structurally
//! untouched. This module caches those per-group decisions under a
//! content fingerprint, so an incremental recompile
//! ([`crate::PassManager::run_incremental`]) re-optimizes only the
//! groups the edit actually changed.
//!
//! # Fingerprints
//!
//! A group's cache key combines:
//!
//! * [`group_content_hash`] — the group's structure: anchor/member
//!   operators and origins, output shape/dtype/kind, and every external
//!   read (position of the reading member, operand index, logical
//!   shape, composed index map, source shape/dtype/kind). Deliberately
//!   **id-free**: operator and tensor ids shift when neighboring layers
//!   are edited, but an unchanged group must keep its fingerprint.
//! * the device fingerprint and pass-sequence id (a different device or
//!   tuner configuration must never serve stale decisions), and
//! * one context digest per refinement pass
//!   ([`crate::pass::GroupRefine::group_context`]) covering the
//!   *global* state the pass folds into this group's decisions — e.g.
//!   layout selection reads the reduction-dimension requirements that
//!   *other* groups place on this group's tensors.
//!
//! Index maps hash through their structural digests (stable across
//! processes), so fingerprints are valid keys for the persisted
//! `group-cache.smem` file; the artifact header's hasher/build probe
//! invalidates the file wholesale when the std hasher or the optimizer
//! sources change.

use crate::pipeline::KernelGroup;
use crate::session::hash_debug_into;
use crate::tune::ExecConfig;
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::{Graph, Layout};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The decisions refinement passes attach to one kernel group — exactly
/// the [`KernelGroup`] fields written by layout selection and tuning,
/// and nothing else. Id-free by construction (layouts, configs and
/// counts carry no graph references), so a decision computed for a
/// group survives the id shifts of editing a neighboring layer.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupDecisions {
    /// Physical layout of the group's output.
    pub output_layout: Layout,
    /// Per-read layouts, in the group's read order.
    pub read_layouts: Vec<Layout>,
    /// Tuned execution configuration.
    pub config: ExecConfig,
    /// Achieved fraction of peak compute throughput.
    pub utilization: f64,
    /// Redundant output copies kept for conflicting consumers (§4.6).
    pub extra_copies: usize,
}

impl GroupDecisions {
    /// Snapshots the refinement decisions currently on `g`.
    pub(crate) fn capture(g: &KernelGroup) -> Self {
        GroupDecisions {
            output_layout: g.output_layout.clone(),
            read_layouts: g.reads.iter().map(|r| r.layout.clone()).collect(),
            config: g.config,
            utilization: g.utilization,
            extra_copies: g.extra_copies,
        }
    }

    /// Applies cached decisions to `g`. Returns `false` — leaving `g`
    /// untouched — when the decisions cannot belong to this group
    /// (read-count or layout-rank mismatch): the 64-bit fingerprint
    /// makes that astronomically unlikely, but a refused application
    /// only costs a recompute while a wrong one corrupts the artifact.
    pub(crate) fn apply(&self, graph: &Graph, g: &mut KernelGroup) -> bool {
        if self.read_layouts.len() != g.reads.len() {
            return false;
        }
        let out_rank = graph.tensor(g.output).shape.rank();
        if self.output_layout.validate(out_rank).is_err() {
            return false;
        }
        for (l, r) in self.read_layouts.iter().zip(&g.reads) {
            if l.validate(graph.tensor(r.source).shape.rank()).is_err() {
                return false;
            }
        }
        g.output_layout = self.output_layout.clone();
        for (r, l) in g.reads.iter_mut().zip(&self.read_layouts) {
            r.layout = l.clone();
        }
        g.config = self.config;
        g.utilization = self.utilization;
        g.extra_copies = self.extra_copies;
        true
    }
}

impl Encode for GroupDecisions {
    fn encode(&self, w: &mut Writer) {
        self.output_layout.encode(w);
        self.read_layouts.encode(w);
        self.config.encode(w);
        self.utilization.encode(w);
        self.extra_copies.encode(w);
    }
}

impl Decode for GroupDecisions {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GroupDecisions {
            output_layout: Decode::decode(r)?,
            read_layouts: Decode::decode(r)?,
            config: Decode::decode(r)?,
            utilization: Decode::decode(r)?,
            extra_copies: Decode::decode(r)?,
        })
    }
}

/// Structural content hash of one kernel group.
///
/// Covers everything the refinement passes read *from the group
/// itself*: anchor and member operators (attributes and origins), the
/// anchor's iteration-space shape, the output tensor's shape, dtype and
/// kind, the latency class, and every external read. Excludes operator
/// and tensor **ids** (they shift under edits elsewhere in the graph)
/// and the refinement outputs themselves (layouts, config,
/// utilization, copy counts) — the hash must be identical before and
/// after refinement, and identical for structurally equal groups of
/// different models.
///
/// Also the per-group seed salt of the GA tuner, which is what makes
/// tuning results independent of both thread schedule and position in
/// the model (see [`crate::GaTuner::tune_salted`]).
pub fn group_content_hash(graph: &Graph, g: &KernelGroup) -> u64 {
    let mut h = DefaultHasher::new();
    let anchor = graph.node(g.anchor);
    hash_debug_into(&mut h, &graph.padded_op(&anchor.op));
    hash_debug_into(&mut h, &anchor.origin);
    graph.padded_dims(anchor.outputs[0]).hash(&mut h);
    g.members.len().hash(&mut h);
    for &m in &g.members {
        let node = graph.node(m);
        hash_debug_into(&mut h, &graph.padded_op(&node.op));
        hash_debug_into(&mut h, &node.origin);
    }
    let out = graph.tensor(g.output);
    graph.padded_dims(g.output).hash(&mut h);
    hash_debug_into(&mut h, &out.dtype);
    hash_debug_into(&mut h, &out.kind);
    hash_debug_into(&mut h, &g.class);
    g.reads.len().hash(&mut h);
    for r in &g.reads {
        // The reading member's identity, as its position within the
        // group (id-free).
        g.members.iter().position(|&m| m == r.member).hash(&mut h);
        r.operand_idx.hash(&mut h);
        graph.padded_dims(r.logical).hash(&mut h);
        // On symbolic graphs the canonical (ceiling-padded) digest of
        // the composed map stands in for the concrete map, so a group
        // keeps its fingerprint when only the bound bucket changes. The
        // concrete IndexExpr hashes by structural digest otherwise —
        // stable across processes and across arenas either way.
        match r.canon {
            Some(c) => c.hash(&mut h),
            None => r.map.hash(&mut h),
        }
        let src = graph.tensor(r.source);
        graph.padded_dims(r.source).hash(&mut h);
        hash_debug_into(&mut h, &src.dtype);
        hash_debug_into(&mut h, &src.kind);
    }
    h.finish()
}

/// Hit/miss counters of a [`GroupCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCacheStats {
    /// Groups whose decisions were served from the cache.
    pub hits: usize,
    /// Groups that were refined cold (and then cached).
    pub misses: usize,
}

/// A cache of per-group refinement decisions, keyed by the combined
/// group fingerprint (content hash ⊕ device ⊕ sequence ⊕ per-pass
/// context digests). Thread-safe; one instance lives in every
/// [`crate::CompileSession`] and is shared by all compilations the
/// session runs, so a model edit or a neighboring shape bucket reuses
/// the decisions of every unchanged group.
#[derive(Debug, Default)]
pub struct GroupCache {
    map: Mutex<HashMap<u64, GroupDecisions>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Bumped on every insertion — the dirty marker persistence
    /// compares against, replacing any length-based proxy.
    generation: AtomicU64,
}

impl GroupCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached group decisions.
    pub fn len(&self) -> usize {
        self.map.lock().expect("group cache lock").len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> GroupCacheStats {
        GroupCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Looks up decisions without touching the counters (the caller
    /// counts, because an unusable entry must be counted as a miss).
    pub(crate) fn lookup(&self, fingerprint: u64) -> Option<GroupDecisions> {
        self.map.lock().expect("group cache lock").get(&fingerprint).cloned()
    }

    /// Records the outcome of one incremental compilation.
    pub(crate) fn count(&self, hits: usize, misses: usize) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Inserts freshly computed decisions. Existing entries win (a
    /// concurrent compilation computed the same value), and only a real
    /// insertion bumps the generation.
    pub(crate) fn insert(&self, fingerprint: u64, decisions: GroupDecisions) {
        let mut map = self.map.lock().expect("group cache lock");
        if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(fingerprint) {
            slot.insert(decisions);
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Monotone change counter: unequal values mean the cache content
    /// changed in between.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Snapshot for persistence.
    pub(crate) fn export(&self) -> Vec<(u64, GroupDecisions)> {
        self.map.lock().expect("group cache lock").iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Merges persisted entries (existing keys win; they were computed
    /// in this process).
    pub(crate) fn import(&self, entries: Vec<(u64, GroupDecisions)>) {
        let mut map = self.map.lock().expect("group cache lock");
        for (k, v) in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(k) {
                slot.insert(v);
                self.generation.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::lte::eliminate;
    use crate::pipeline::assemble_groups;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    fn groups_of(g: &Graph) -> Vec<KernelGroup> {
        let lte = eliminate(g, true, true);
        let drafts = fuse(g, &lte, true);
        assemble_groups(g, &lte, &drafts)
    }

    fn two_layer(second: UnaryKind) -> Graph {
        let mut b = GraphBuilder::new("edit");
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x, w);
        let a1 = b.unary(mm, UnaryKind::Relu);
        let mm2 = b.matmul(a1, w);
        let a2 = b.unary(mm2, second);
        b.output(a2);
        b.finish()
    }

    #[test]
    fn content_hash_is_id_free() {
        // Prepending an unrelated layer shifts every id after it; the
        // structurally identical tail group must keep its hash.
        let plain = two_layer(UnaryKind::Gelu);
        let mut b = GraphBuilder::new("edit");
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let x2 = b.unary(x, UnaryKind::Identity); // extra leading layer
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x2, w);
        let a1 = b.unary(mm, UnaryKind::Relu);
        let mm2 = b.matmul(a1, w);
        let a2 = b.unary(mm2, UnaryKind::Gelu);
        b.output(a2);
        let shifted = b.finish();

        let ga = groups_of(&plain);
        let gb = groups_of(&shifted);
        let last_a = group_content_hash(&plain, ga.last().unwrap());
        let last_b = group_content_hash(&shifted, gb.last().unwrap());
        assert_eq!(last_a, last_b, "id shifts must not move the content hash");
    }

    #[test]
    fn content_hash_sees_op_edits() {
        let a = two_layer(UnaryKind::Gelu);
        let b = two_layer(UnaryKind::Relu);
        let ga = groups_of(&a);
        let gb = groups_of(&b);
        assert_eq!(ga.len(), gb.len());
        let ha: Vec<u64> = ga.iter().map(|g| group_content_hash(&a, g)).collect();
        let hb: Vec<u64> = gb.iter().map(|g| group_content_hash(&b, g)).collect();
        let changed = ha.iter().zip(&hb).filter(|(x, y)| x != y).count();
        assert_eq!(changed, 1, "exactly the edited group changes: {ha:?} vs {hb:?}");
    }

    #[test]
    fn decisions_roundtrip_and_apply() {
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        let g = two_layer(UnaryKind::Gelu);
        let mut groups = groups_of(&g);
        let d = GroupDecisions::capture(&groups[0]);
        let back: GroupDecisions = decode_from(&encode_to_vec(&d)).unwrap();
        assert_eq!(d, back);
        assert!(back.apply(&g, &mut groups[0]));
        // A decision with the wrong read count is refused.
        let mut wrong = d.clone();
        wrong.read_layouts.push(Layout::row_major(2));
        assert!(!wrong.apply(&g, &mut groups[0]));
    }

    #[test]
    fn generation_tracks_insertions_only() {
        let g = two_layer(UnaryKind::Gelu);
        let groups = groups_of(&g);
        let cache = GroupCache::new();
        assert_eq!(cache.generation(), 0);
        let d = GroupDecisions::capture(&groups[0]);
        cache.insert(1, d.clone());
        assert_eq!(cache.generation(), 1);
        cache.insert(1, d.clone()); // duplicate key: no change
        assert_eq!(cache.generation(), 1);
        cache.import(vec![(1, d.clone()), (2, d)]);
        assert_eq!(cache.generation(), 2, "import bumps only for new keys");
        assert_eq!(cache.len(), 2);
    }
}
