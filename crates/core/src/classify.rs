//! Operator classification (§3.1, Tables 3–4 of the paper).
//!
//! Every operator is placed in one of four quadrants along two axes:
//!
//! * **input-layout dependence** — whether the computation's performance
//!   depends on the physical layout of its inputs (temporal reuse ⇒
//!   dependent; single-touch streaming ⇒ independent);
//! * **output-layout customizability** — whether the operator can
//!   produce its result in an arbitrary layout (Variable) or its output
//!   layout is fully determined by the operation (Fixed).

use smartmem_ir::Op;
use std::fmt;

/// Whether computation performance depends on the input layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InputDep {
    /// Input-layout dependent (`ILD`): the operator re-uses input
    /// elements (Conv, MatMul) or aggregates along axes (norms,
    /// reductions), so access order matters.
    Ild,
    /// Input-layout independent (`ILI`): each element is touched once in
    /// any order (element-wise ops, selection).
    Ili,
}

/// Whether the output layout can be customized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutputKind {
    /// The operator may emit its result in any layout (computation-order
    /// dependent).
    Variable,
    /// The output layout is fixed by the operator's definition
    /// (layout transformations, selection).
    Fixed,
}

/// One quadrant of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpClass {
    /// Input-layout dependence.
    pub input_dep: InputDep,
    /// Output-layout customizability.
    pub output: OutputKind,
}

impl OpClass {
    /// `ILD & Variable`.
    pub const ILD_VARIABLE: OpClass =
        OpClass { input_dep: InputDep::Ild, output: OutputKind::Variable };
    /// `ILI & Variable`.
    pub const ILI_VARIABLE: OpClass =
        OpClass { input_dep: InputDep::Ili, output: OutputKind::Variable };
    /// `ILD & Fixed`.
    pub const ILD_FIXED: OpClass = OpClass { input_dep: InputDep::Ild, output: OutputKind::Fixed };
    /// `ILI & Fixed`.
    pub const ILI_FIXED: OpClass = OpClass { input_dep: InputDep::Ili, output: OutputKind::Fixed };

    /// "Optimization complexity" rank used to pick the surviving class
    /// of a combined pair (§3.2: ILD&Var > ILI&Var > ILD&Fixed >
    /// ILI&Fixed).
    pub fn complexity(&self) -> u8 {
        match (self.input_dep, self.output) {
            (InputDep::Ild, OutputKind::Variable) => 3,
            (InputDep::Ili, OutputKind::Variable) => 2,
            (InputDep::Ild, OutputKind::Fixed) => 1,
            (InputDep::Ili, OutputKind::Fixed) => 0,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dep = match self.input_dep {
            InputDep::Ild => "ILD",
            InputDep::Ili => "ILI",
        };
        let out = match self.output {
            OutputKind::Variable => "Variable",
            OutputKind::Fixed => "Fixed",
        };
        write!(f, "{dep} & {out}")
    }
}

/// Classifies an operator per Table 3.
pub fn classify(op: &Op) -> OpClass {
    match op {
        // ILD & Variable: temporal reuse / aggregation, customizable output.
        Op::Conv2d { .. }
        | Op::MatMul { .. }
        | Op::LayerNorm { .. }
        | Op::InstanceNorm
        | Op::Softmax { .. }
        | Op::Reduce { .. }
        | Op::Pool2d { .. } => OpClass::ILD_VARIABLE,
        // ILI & Variable: single-touch element-wise, customizable output.
        Op::Unary { .. } | Op::Binary { .. } | Op::Concat { .. } => OpClass::ILI_VARIABLE,
        // ILD & Fixed: pure layout transformations.
        Op::Reshape { .. }
        | Op::Transpose { .. }
        | Op::DepthToSpace { .. }
        | Op::SpaceToDepth { .. } => OpClass::ILD_FIXED,
        // ILI & Fixed: selection with layout-preserving output.
        Op::Gather { .. } | Op::Slice { .. } | Op::Split { .. } => OpClass::ILI_FIXED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_assignments() {
        assert_eq!(
            classify(&Op::Conv2d { stride: (1, 1), padding: (0, 0), groups: 1 }),
            OpClass::ILD_VARIABLE
        );
        assert_eq!(classify(&Op::MatMul { trans_a: false, trans_b: false }), OpClass::ILD_VARIABLE);
        assert_eq!(classify(&Op::LayerNorm { axes: vec![2] }), OpClass::ILD_VARIABLE);
        assert_eq!(classify(&Op::Softmax { axis: 1 }), OpClass::ILD_VARIABLE);
        assert_eq!(
            classify(&Op::Unary { kind: smartmem_ir::UnaryKind::Relu }),
            OpClass::ILI_VARIABLE
        );
        assert_eq!(
            classify(&Op::Binary { kind: smartmem_ir::BinaryKind::Add }),
            OpClass::ILI_VARIABLE
        );
        assert_eq!(classify(&Op::Reshape { shape: vec![1] }), OpClass::ILD_FIXED);
        assert_eq!(classify(&Op::Transpose { perm: vec![0] }), OpClass::ILD_FIXED);
        assert_eq!(classify(&Op::DepthToSpace { block: 2 }), OpClass::ILD_FIXED);
        assert_eq!(classify(&Op::SpaceToDepth { block: 2 }), OpClass::ILD_FIXED);
        assert_eq!(classify(&Op::Gather { axis: 0 }), OpClass::ILI_FIXED);
        assert_eq!(classify(&Op::Slice { axis: 0, start: 0, len: 1 }), OpClass::ILI_FIXED);
        assert_eq!(classify(&Op::Split { axis: 0, parts: 2 }), OpClass::ILI_FIXED);
    }

    #[test]
    fn complexity_ordering() {
        assert!(OpClass::ILD_VARIABLE.complexity() > OpClass::ILI_VARIABLE.complexity());
        assert!(OpClass::ILI_VARIABLE.complexity() > OpClass::ILD_FIXED.complexity());
        assert!(OpClass::ILD_FIXED.complexity() > OpClass::ILI_FIXED.complexity());
    }

    #[test]
    fn display() {
        assert_eq!(OpClass::ILD_VARIABLE.to_string(), "ILD & Variable");
        assert_eq!(OpClass::ILI_FIXED.to_string(), "ILI & Fixed");
    }
}
