//! Mapping tensors to 2.5D texture memory (§3.3, Fig. 5).

use smartmem_ir::{Layout, Shape, TexturePlacement};

/// Default maximum texture extent per axis (texels), matching common
/// mobile GPU limits; the per-device limit lives in
/// `smartmem_sim::DeviceCaps::max_texture_extent` and is what layout
/// selection actually consults.
pub const MAX_TEXTURE_EXTENT: u64 = 16384;

/// Builds the SmartMem texture placement for a tensor of `dims` given up
/// to two reduction-dimension requirements from its consumers
/// (Fig. 5's `L0`/`L1`/`L2` layouts):
///
/// * `r0` is mapped to the texture X axis and packed into the `vec4`
///   lanes when `vectorize` is set ("partition one reduction dimension;
///   each partition has k = 4 elements" — §3.3);
/// * `r1` (when present and distinct) becomes the innermost dimension of
///   the Y axis, so both reduction dims are contiguously addressable;
/// * remaining dims fold into Y, outermost first.
///
/// `max_extent` is the device's per-axis texture limit
/// (`DeviceCaps::max_texture_extent`), which drives the overflow
/// balancing between the two axes.
///
/// # Panics
///
/// Panics if `r0`/`r1` are out of range.
pub fn place_texture(
    dims: &[usize],
    r0: usize,
    r1: Option<usize>,
    vectorize: bool,
    max_extent: u64,
) -> Layout {
    let rank = dims.len();
    assert!(r0 < rank, "r0 out of range");
    if let Some(r1) = r1 {
        assert!(r1 < rank, "r1 out of range");
    }
    let r1 = r1.filter(|&r| r != r0);
    let mut height: Vec<usize> = (0..rank).filter(|&d| d != r0 && Some(d) != r1).collect();
    if let Some(r1) = r1 {
        height.push(r1); // innermost on Y
    }
    let mut width = vec![r0];
    // Balance overflowing axes: when the folded height exceeds the
    // texture limit, move outer height dims in front of r0 on the X
    // axis (r0 stays innermost on X, so its contiguity is preserved) —
    // the same folding trick as the standard CHW4 image layout.
    let extent = |dims_list: &[usize], vector: Option<usize>| -> u64 {
        dims_list
            .iter()
            .map(|&d| match vector {
                Some(v) if v == d => dims[d].div_ceil(4) as u64,
                _ => dims[d] as u64,
            })
            .product::<u64>()
            .max(1)
    };
    let vector = vectorize.then_some(r0);
    while extent(&height, vector) > max_extent && !height.is_empty() {
        let candidate = height.remove(0);
        width.insert(0, candidate);
        if extent(&width, vector) > max_extent {
            // Moving it would overflow X instead: undo and stop.
            width.remove(0);
            height.insert(0, candidate);
            break;
        }
    }
    Layout::Texture(TexturePlacement { height_dims: height, width_dims: width, vector_dim: vector })
}

/// Whether a texture layout fits the device's per-axis texture limit
/// (`DeviceCaps::max_texture_extent`) for the given shape.
pub fn fits_texture(layout: &Layout, shape: &Shape, max_extent: u64) -> bool {
    match layout.texture_extent(shape) {
        Some((w, h)) => w <= max_extent && h <= max_extent,
        None => true,
    }
}

/// Buffer fallback with the primary required dim innermost.
pub fn place_buffer(dims: &[usize], r0: Option<usize>) -> Layout {
    let rank = dims.len();
    let mut perm: Vec<usize> = (0..rank).collect();
    if let Some(r0) = r0 {
        perm.retain(|&d| d != r0);
        perm.push(r0);
    }
    Layout::Buffer { perm, vector_dim: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::PhysicalAddress;

    #[test]
    fn l0_style_placement_two_reduction_dims() {
        // Fig. 5 L0: D1 and D3 are reduction dims of a [D1, D2, D3] tensor.
        let l = place_texture(&[8, 16, 32], 0, Some(2), true, MAX_TEXTURE_EXTENT);
        assert!(l.validate(3).is_ok());
        // Walking D1 moves along X (vectorized), walking D3 moves along Y.
        let shape = Shape::new(vec![8, 16, 32]);
        let a = l.address(&shape, &[0, 0, 0]);
        let b = l.address(&shape, &[4, 0, 0]); // next texel on X
        let c = l.address(&shape, &[0, 0, 1]); // next row on Y
        match (a, b, c) {
            (
                PhysicalAddress::Texel { x: x0, y: y0, .. },
                PhysicalAddress::Texel { x: x1, y: y1, .. },
                PhysicalAddress::Texel { x: x2, y: y2, .. },
            ) => {
                assert_eq!((x1, y1), (x0 + 1, y0));
                assert_eq!((x2, y2), (x0, y0 + 1));
            }
            _ => panic!("expected texel addresses"),
        }
    }

    #[test]
    fn single_reduction_dim_placement() {
        let l = place_texture(&[4, 6, 8], 2, None, true, MAX_TEXTURE_EXTENT);
        let shape = Shape::new(vec![4, 6, 8]);
        let (w, h) = l.texture_extent(&shape).unwrap();
        assert_eq!(w, 2); // 8 / 4 lanes
        assert_eq!(h, 24);
    }

    #[test]
    fn duplicate_r1_is_ignored() {
        let l = place_texture(&[4, 6], 1, Some(1), true, MAX_TEXTURE_EXTENT);
        assert!(l.validate(2).is_ok());
    }

    #[test]
    fn texture_limits() {
        let small = place_texture(&[8, 8], 1, None, true, MAX_TEXTURE_EXTENT);
        assert!(fits_texture(&small, &Shape::new(vec![8, 8]), MAX_TEXTURE_EXTENT));
        let huge = place_texture(&[100_000, 4], 1, None, false, MAX_TEXTURE_EXTENT);
        assert!(!fits_texture(&huge, &Shape::new(vec![100_000, 4]), MAX_TEXTURE_EXTENT));
    }

    #[test]
    fn device_limit_drives_the_fit() {
        // The same placement fits a 16K-extent device but not a device
        // whose capability caps textures at 1K per axis.
        let l = place_texture(&[2048, 16], 1, None, false, MAX_TEXTURE_EXTENT);
        let shape = Shape::new(vec![2048, 16]);
        assert!(fits_texture(&l, &shape, MAX_TEXTURE_EXTENT));
        assert!(!fits_texture(&l, &shape, 1024));
    }

    #[test]
    fn buffer_fallback_orders_reduction_innermost() {
        let l = place_buffer(&[4, 6, 8], Some(1));
        match &l {
            Layout::Buffer { perm, .. } => assert_eq!(perm, &[0, 2, 1]),
            _ => panic!("expected buffer"),
        }
    }
}
