//! Operator fusion (DNNFusion-style grouping, used both as the
//! baseline and underneath SmartMem, §3.2).
//!
//! SmartMem "relies on the techniques based on the DNNFusion project to
//! decide if an operator fusion is legal". This module reproduces the
//! effective policy: element-wise (`ILI & Variable`) operators fold into
//! their producer's kernel when the intermediate tensor has exactly one
//! consumer; heavier `ILD & Variable` operators anchor their own kernels
//! ("keep both" in Table 5). Running fusion *after* elimination is what
//! yields SmartMem's extra 1.1–1.7× fusion rate over DNNFusion
//! (Table 7): with the `Reshape`/`Transpose` kernels gone, element-wise
//! chains become adjacent to their true producers.

use crate::lte::LteResult;
use smartmem_ir::{Graph, Op, OpId, TensorId, TensorKind};
use std::collections::HashMap;

/// Maximum member count per fused kernel; DNNFusion caps fusion group
/// size to bound register pressure.
const MAX_GROUP: usize = 24;

/// A draft kernel group produced by fusion (layouts and costs attached
/// later by the pipeline).
#[derive(Clone, Debug)]
pub struct GroupDraft {
    /// The operator that anchors the kernel (first member).
    pub anchor: OpId,
    /// Members in topological order (anchor first).
    pub members: Vec<OpId>,
}

impl GroupDraft {
    /// The group's materialized output: the last member's first output.
    pub fn output(&self, graph: &Graph) -> TensorId {
        graph.node(*self.members.last().expect("non-empty group")).outputs[0]
    }
}

/// Whether an operator may be folded into its producer's kernel as an
/// epilogue.
///
/// `Reshape` is fusable too: in DNNFusion's taxonomy it is a
/// "One-to-One" mapping operator, and when its producer writes to a
/// linear buffer the reshape is a metadata change on the kernel's
/// output view.
fn is_epilogue_fusable(op: &Op) -> bool {
    matches!(op, Op::Unary { .. } | Op::Binary { .. } | Op::Reshape { .. })
}

/// Groups the kept operators of `lte` into fused kernels.
///
/// When `enabled` is false every operator becomes its own kernel (the
/// fixed-pattern baselines override grouping themselves).
pub fn fuse(graph: &Graph, lte: &LteResult, enabled: bool) -> Vec<GroupDraft> {
    let kept: Vec<OpId> = lte.kept.clone();
    if !enabled {
        return kept.into_iter().map(|id| GroupDraft { anchor: id, members: vec![id] }).collect();
    }

    // Effective consumer counts of each materialized tensor: how many
    // kept operators read it (through eliminated chains), plus one if it
    // is a graph output.
    let mut consumers: HashMap<TensorId, usize> = HashMap::new();
    for &id in &kept {
        for &input in &graph.node(id).inputs {
            let src = lte.resolve(input).source;
            *consumers.entry(src).or_insert(0) += 1;
        }
    }
    for &out in graph.outputs() {
        let src = lte.resolve(out).source;
        *consumers.entry(src).or_insert(0) += 1;
    }

    let mut groups: Vec<GroupDraft> = Vec::new();
    // group_of: materialized tensor -> index of the group producing it.
    let mut group_of_tensor: HashMap<TensorId, usize> = HashMap::new();

    for &id in &kept {
        let node = graph.node(id);
        let mut fused = false;
        if is_epilogue_fusable(&node.op) {
            // Try to fold into the producer of one of the inputs.
            for &input in &node.inputs {
                let src = lte.resolve(input).source;
                if graph.tensor(src).kind != TensorKind::Activation {
                    continue;
                }
                if consumers.get(&src).copied().unwrap_or(0) != 1 {
                    continue; // intermediate is shared: must materialize
                }
                if let Some(&gidx) = group_of_tensor.get(&src) {
                    if groups[gidx].members.len() >= MAX_GROUP {
                        continue;
                    }
                    groups[gidx].members.push(id);
                    // The group now produces this op's output instead.
                    group_of_tensor.remove(&src);
                    group_of_tensor.insert(node.outputs[0], gidx);
                    fused = true;
                    break;
                }
            }
        }
        if !fused {
            let gidx = groups.len();
            groups.push(GroupDraft { anchor: id, members: vec![id] });
            group_of_tensor.insert(node.outputs[0], gidx);
            // Multi-output ops (kept Split): register every output.
            for &out in &node.outputs[1..] {
                group_of_tensor.insert(out, gidx);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lte::eliminate;
    use smartmem_ir::{BinaryKind, DType, GraphBuilder, UnaryKind};

    fn build() -> Graph {
        // conv -> relu -> (transpose) -> gelu -> add(residual from conv2)
        let mut b = GraphBuilder::new("fusion");
        let x = b.input("x", &[1, 8, 4, 4], DType::F16);
        let w = b.weight("w", &[8, 8, 1, 1], DType::F16);
        let c1 = b.conv2d(x, w, (1, 1), (0, 0), 1);
        let r = b.unary(c1, UnaryKind::Relu);
        let rs = b.transpose(r, &[0, 2, 3, 1]);
        let g1 = b.unary(rs, UnaryKind::Gelu);
        let w2 = b.weight("w2", &[8, 8, 1, 1], DType::F16);
        let c2 = b.conv2d(x, w2, (1, 1), (0, 0), 1);
        let rs2 = b.transpose(c2, &[0, 2, 3, 1]);
        let a = b.binary(g1, rs2, BinaryKind::Add);
        b.output(a);
        b.finish()
    }

    #[test]
    fn fusion_with_lte_collapses_elementwise_chain() {
        let g = build();
        let lte = eliminate(&g, true, true);
        let groups = fuse(&g, &lte, true);
        // conv1+relu+gelu+add in one group; conv2 its own group.
        assert_eq!(groups.len(), 2, "{groups:?}");
        let sizes: Vec<usize> = groups.iter().map(|gr| gr.members.len()).collect();
        assert!(sizes.contains(&4), "expected a 4-member fused kernel, got {sizes:?}");
    }

    #[test]
    fn fusion_without_lte_is_blocked_by_transforms() {
        let g = build();
        let lte = eliminate(&g, false, true);
        let groups = fuse(&g, &lte, true);
        // Reshape kernels break the chains: conv1+relu, reshape, gelu+?,
        // conv2, reshape2, add -> more groups than with LTE.
        assert!(groups.len() > 2, "got {}", groups.len());
    }

    #[test]
    fn shared_intermediate_is_not_fused() {
        let mut b = GraphBuilder::new("shared");
        let x = b.input("x", &[4, 4], DType::F16);
        let r = b.unary(x, UnaryKind::Relu);
        let a = b.unary(r, UnaryKind::Gelu);
        let c = b.unary(r, UnaryKind::Sigmoid);
        let s = b.binary(a, c, BinaryKind::Add);
        b.output(s);
        let g = b.finish();
        let lte = eliminate(&g, true, true);
        let groups = fuse(&g, &lte, true);
        // relu's output feeds two consumers -> relu cannot absorb either;
        // gelu and sigmoid anchor their own groups; add fuses into one of
        // them (its other operand is then shared? no: each intermediate
        // has one consumer). Expect: [relu], [gelu(+add?)], [sigmoid...].
        assert!(groups.len() >= 2 && groups.len() <= 3, "got {}", groups.len());
        let first = groups.iter().find(|gr| gr.anchor == g.nodes()[0].id).unwrap();
        assert_eq!(first.members.len(), 1, "shared relu must stay unfused");
    }

    #[test]
    fn disabled_fusion_gives_one_group_per_op() {
        let g = build();
        let lte = eliminate(&g, false, true);
        let groups = fuse(&g, &lte, false);
        assert_eq!(groups.len(), g.op_count());
    }

    #[test]
    fn group_output_is_last_member() {
        let g = build();
        let lte = eliminate(&g, true, true);
        let groups = fuse(&g, &lte, true);
        for gr in &groups {
            let out = gr.output(&g);
            let last = g.node(*gr.members.last().unwrap());
            assert_eq!(out, last.outputs[0]);
        }
    }
}
