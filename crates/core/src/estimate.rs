//! Latency and memory estimation of an [`OptimizedGraph`] on a device.
//!
//! Each kernel group is profiled by *sampled trace analysis*: a window
//! of its iteration space is executed, generating the physical
//! addresses implied by the chosen layouts and (for eliminated
//! transformation chains) the composed index maps. From the trace we
//! measure each operand's **line drag** — the ratio of cache-line bytes
//! dragged from memory to useful bytes, i.e. the spatial-locality
//! quality of the layout for this access pattern (1.0 = perfect
//! streaming, up to `line/elem` for fully strided access). Texture
//! operands use 2-D tile granules, which is exactly the 2.5D-memory
//! advantage of Table 2.
//!
//! DRAM traffic per operand is then
//!
//! ```text
//! traffic = unique_bytes × line_drag × passes
//! ```
//!
//! where `passes` models how often the operand must be re-streamed
//! given on-chip tile reuse (GEMM/conv operands whose counterpart fits
//! in cache stream once; otherwise once per output tile strip), and the
//! roofline cost model of `smartmem-sim` turns traffic and ALU work
//! (including strength-reduced index arithmetic) into nanoseconds.
//! Identical group signatures are memoized (transformer blocks repeat
//! dozens of times).

use crate::lte::{is_eliminable, op_pullback};
use crate::pipeline::{EdgeRead, KernelGroup, OptimizedGraph};
use smartmem_index::IndexMap;
use smartmem_ir::{Graph, MemoryClass, Op, PhysicalAddress, Shape};
use smartmem_sim::{DeviceConfig, KernelProfile, LatencyClass, MemCounters, OpCost};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Output-space sample budget per kernel.
const MAX_OUT_SAMPLES: usize = 256;
/// Inner (reduction) loop sample budget per output point.
const MAX_INNER: usize = 16;
/// Amortization of index arithmetic across vectorized (`vec4`) loads:
/// one composed-index evaluation covers a vector of elements.
const INDEX_AMORTIZATION: f64 = 0.25;

/// Per-kernel estimation result.
#[derive(Clone, Debug)]
pub struct GroupReport {
    /// Index into [`OptimizedGraph::groups`].
    pub index: usize,
    /// Latency bucket.
    pub class: LatencyClass,
    /// Latency decomposition.
    pub cost: OpCost,
    /// MACs executed.
    pub macs: u64,
    /// Scaled memory counters.
    pub counters: MemCounters,
}

/// Whole-model estimation result.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in giga-MACs per second (the paper's "Speed" column).
    pub gmacs: f64,
    /// Number of kernels launched.
    pub kernel_count: usize,
    /// Latency spent in compute kernels (ms).
    pub compute_ms: f64,
    /// Latency spent in explicit (model-authored) transformations (ms).
    pub explicit_ms: f64,
    /// Latency spent in implicit (framework-inserted) transformations (ms).
    pub implicit_ms: f64,
    /// Scaled memory counters (Fig. 7/9).
    pub mem: MemCounters,
    /// Estimated DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Peak memory footprint in bytes (weights + activations +
    /// workspaces under the framework's memory model).
    pub peak_memory_bytes: u64,
    /// Per-kernel details.
    pub groups: Vec<GroupReport>,
}

impl ModelReport {
    /// Fraction of latency spent in layout transformations (Table 1's
    /// `Imp. + Exp.` columns).
    pub fn transform_fraction(&self) -> f64 {
        if self.latency_ms == 0.0 {
            0.0
        } else {
            (self.explicit_ms + self.implicit_ms) / self.latency_ms
        }
    }

    /// Average computational intensity in MACs/byte (x-axis of Fig. 12).
    pub fn intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            0.0
        } else {
            (self.gmacs * self.latency_ms * 1e6) / self.dram_bytes as f64
        }
    }
}

/// Measured locality of one operand's sampled trace.
#[derive(Clone, Copy, Debug)]
struct EdgeTrace {
    /// Bytes dragged per useful byte, `[1, line/elem]`.
    drag: f64,
}

/// Memoized per-group trace results (last entry is the output write).
#[derive(Clone, Debug)]
struct GroupTrace {
    reads: Vec<EdgeTrace>,
    write: EdgeTrace,
}

impl OptimizedGraph {
    /// Estimates execution of the optimized model on `device`.
    pub fn estimate(&self, device: &DeviceConfig) -> ModelReport {
        let graph = &self.graph;
        let elem = device.dtype.size_bytes();
        let mut memo: HashMap<u64, GroupTrace> = HashMap::new();

        let line_buffer = device.buffer_cache.line_bytes as u64;
        let tile_texture = (device.texture_tiling.tile_w * device.texture_tiling.tile_h) * 4 * elem;

        let mut groups_out = Vec::with_capacity(self.groups.len());
        let mut total_ns = 0.0;
        let (mut compute_ns, mut explicit_ns, mut implicit_ns) = (0.0, 0.0, 0.0);
        let mut mem = MemCounters::default();
        let mut dram_bytes_total: u64 = 0;
        let mut total_macs: u64 = 0;

        for (gi, group) in self.groups.iter().enumerate() {
            let anchor = graph.node(group.anchor);
            let anchor_out_shape = graph.tensor(anchor.outputs[0]).shape.clone();
            let out_shape = graph.tensor(group.output).shape.clone();
            let anchor_numel = anchor_out_shape.numel();
            let out_numel = out_shape.numel();

            // --- Sampled trace (memoized) ----------------------------
            let trace = {
                let key = group_signature(graph, group);
                memo.entry(key).or_insert_with(|| trace_group(graph, group, device, elem)).clone()
            };

            // --- Per-operand DRAM traffic ----------------------------
            let mut dram_buffer: u64 = 0;
            let mut dram_texture: u64 = 0;
            let mut accesses_buffer: u64 = 0;
            let mut accesses_texture: u64 = 0;
            let mut index_ops = 0.0f64;

            for (read, trace) in group.reads.iter().zip(trace.reads.iter()) {
                let is_anchor_read = read.member == group.anchor;
                let iter_numel = if is_anchor_read { anchor_numel } else { out_numel } as f64;
                let ppr = if is_anchor_read {
                    per_point_reads(graph, &anchor.op, read, &anchor_out_shape)
                } else {
                    1.0
                };
                let accesses = ppr * iter_numel;
                let src_bytes = graph.tensor(read.source).shape.numel() * elem;
                let unique = (src_bytes as f64).min(accesses * elem as f64);
                // Operands that fit in cache stay resident after the
                // compulsory fetch: traffic is just the footprint. Only
                // streamed operands pay line drag and re-streaming
                // passes.
                let cache = match read.layout.memory_class() {
                    MemoryClass::Buffer1D => device.buffer_cache.size_bytes as f64 * 0.5,
                    MemoryClass::Texture2p5D => device.texture_cache.size_bytes as f64 * 0.5,
                };
                let (traffic, requests) = if (src_bytes as f64) <= cache {
                    (unique as u64, (unique / elem as f64) as u64)
                } else {
                    let passes = operand_passes(graph, group, read, device, elem);
                    ((unique * trace.drag * passes) as u64, (unique * passes / elem as f64) as u64)
                };
                // `requests` are accesses reaching global memory — the
                // quantity the paper's hardware counter reports (Fig. 7);
                // on-chip-reuse hits are excluded.
                match read.layout.memory_class() {
                    MemoryClass::Buffer1D => {
                        dram_buffer += traffic;
                        accesses_buffer += requests;
                    }
                    MemoryClass::Texture2p5D => {
                        dram_texture += traffic;
                        accesses_texture += requests;
                    }
                }
                let _ = accesses;
                let mut map_cost = read.map.as_ref().map(|m| m.cost().weighted()).unwrap_or(0.0);
                if is_anchor_read && is_eliminable(&anchor.op) {
                    map_cost +=
                        own_pullback(graph, group).map(|m| m.cost().weighted()).unwrap_or(0.0);
                }
                // Index expressions are evaluated once per *distinct*
                // element: loop-invariant sub-expressions are hoisted out
                // of the reduction loops, so repeated touches of the same
                // element reuse the computed address.
                let unique_accesses = accesses.min(graph.tensor(read.source).shape.numel() as f64);
                // Even without strength reduction a generated kernel
                // evaluates the transformation chain step-by-step, so the
                // per-element cost is bounded by the chain length, not by
                // the size of the fully substituted expression tree.
                let map_cost = map_cost.min(200.0);
                index_ops += map_cost * unique_accesses * INDEX_AMORTIZATION;
            }

            // Output write: streamed once per copy, dragged by the
            // write layout's locality in iteration order.
            let write_bytes = ((out_numel * elem) as f64 * trace.write.drag) as u64
                * (1 + group.extra_copies as u64);
            match group.output_layout.memory_class() {
                MemoryClass::Buffer1D => {
                    dram_buffer += write_bytes;
                    accesses_buffer += out_numel;
                }
                MemoryClass::Texture2p5D => {
                    dram_texture += write_bytes;
                    accesses_texture += out_numel;
                }
            }

            // --- Compute & epilogue work -----------------------------
            let macs: u64 = group.members.iter().map(|&m| graph.node_macs(m)).sum();
            let alu_ops: f64 = group
                .members
                .iter()
                .map(|&m| {
                    let n = graph.node(m);
                    let numel = graph.tensor(n.outputs[0]).shape.numel() as f64;
                    n.op.ops_per_element() * numel
                })
                .sum();

            let profile = KernelProfile {
                macs,
                alu_ops,
                dram_bytes_buffer: dram_buffer,
                dram_bytes_texture: dram_texture,
                index_ops,
                utilization: group.utilization,
            };
            let mut cost = device.kernel_cost(&profile);
            cost.launch_ns *= self.mem_model.dispatch_scale;
            let ns = cost.total_ns();
            total_ns += ns;
            match group.class {
                LatencyClass::Compute => compute_ns += ns,
                LatencyClass::ExplicitTransform => explicit_ns += ns,
                LatencyClass::ImplicitTransform => implicit_ns += ns,
            }

            let counters = MemCounters {
                buffer_accesses: accesses_buffer,
                buffer_misses: dram_buffer / line_buffer.max(1),
                texture_accesses: accesses_texture,
                texture_misses: dram_texture / tile_texture.max(1),
            };
            mem = mem.combine(counters);
            dram_bytes_total += dram_buffer + dram_texture;
            total_macs += macs;

            groups_out.push(GroupReport { index: gi, class: group.class, cost, macs, counters });
        }

        let latency_ms = total_ns / 1e6;
        let gmacs = if latency_ms > 0.0 { total_macs as f64 / (latency_ms * 1e6) } else { 0.0 };
        ModelReport {
            latency_ms,
            gmacs,
            kernel_count: self.groups.len(),
            compute_ms: compute_ns / 1e6,
            explicit_ms: explicit_ns / 1e6,
            implicit_ms: implicit_ns / 1e6,
            mem,
            dram_bytes: dram_bytes_total,
            peak_memory_bytes: self.peak_memory(device),
            groups: groups_out,
        }
    }

    /// Peak memory footprint under the framework's memory model.
    pub fn peak_memory(&self, device: &DeviceConfig) -> u64 {
        let graph = &self.graph;
        let elem = device.dtype.size_bytes();
        let weights: u64 = graph.param_count() * elem;
        let bytes_of = |t: smartmem_ir::TensorId| graph.tensor(t).shape.numel() * elem;

        let activations = if self.mem_model.pooled {
            // Liveness over the group schedule.
            let mut last_use: HashMap<u32, usize> = HashMap::new();
            for (gi, g) in self.groups.iter().enumerate() {
                for r in &g.reads {
                    last_use.insert(r.source.0, gi);
                }
            }
            for &out in graph.outputs() {
                last_use.insert(out.0, self.groups.len());
            }
            let mut live: u64 = graph.inputs().iter().map(|&t| bytes_of(t)).sum();
            let mut peak = live;
            let mut expires: HashMap<usize, u64> = HashMap::new();
            for (gi, g) in self.groups.iter().enumerate() {
                let b = bytes_of(g.output) * (1 + g.extra_copies as u64);
                live += b;
                peak = peak.max(live);
                let lu = last_use.get(&g.output.0).copied().unwrap_or(gi);
                *expires.entry(lu).or_insert(0) += b;
                if let Some(freed) = expires.remove(&gi) {
                    live = live.saturating_sub(freed);
                }
            }
            peak
        } else {
            // Every intermediate stays allocated.
            self.groups
                .iter()
                .map(|g| bytes_of(g.output) * (1 + g.extra_copies as u64))
                .sum::<u64>()
                + graph.inputs().iter().map(|&t| bytes_of(t)).sum::<u64>()
        };

        let im2col = if self.mem_model.im2col {
            self.groups
                .iter()
                .filter_map(|g| {
                    let n = graph.node(g.anchor);
                    match n.op {
                        Op::Conv2d { .. } => {
                            let w = &graph.tensor(n.inputs[1]).shape;
                            let out = &graph.tensor(n.outputs[0]).shape;
                            Some(
                                w.dim(1) as u64
                                    * w.dim(2) as u64
                                    * w.dim(3) as u64
                                    * out.dim(2) as u64
                                    * out.dim(3) as u64
                                    * elem,
                            )
                        }
                        _ => None,
                    }
                })
                .max()
                .unwrap_or(0)
        } else {
            0
        };

        weights + (activations as f64 * self.mem_model.workspace_factor) as u64 + im2col
    }
}

/// How many times an operand must be streamed from DRAM given on-chip
/// tile reuse: GEMM/conv operands whose counterpart (times its drag)
/// fits in the cache stream once; otherwise once per output-tile strip.
fn operand_passes(
    graph: &Graph,
    group: &KernelGroup,
    read: &EdgeRead,
    device: &DeviceConfig,
    elem: u64,
) -> f64 {
    let member = graph.node(read.member);
    if read.member != group.anchor {
        return 1.0;
    }
    let cache_bytes = |layout: &smartmem_ir::Layout| -> f64 {
        match layout.memory_class() {
            MemoryClass::Buffer1D => device.buffer_cache.size_bytes as f64 * 0.5,
            MemoryClass::Texture2p5D => device.texture_cache.size_bytes as f64 * 0.5,
        }
    };
    let eff_tile_m = (group.config.tile.0 * group.config.workgroup.0).max(1) as f64;
    let eff_tile_n = (group.config.tile.1 * group.config.workgroup.1).max(1) as f64;
    match &member.op {
        Op::MatMul { .. } => {
            let out = &graph.tensor(member.outputs[0]).shape;
            let rank = out.rank();
            let (m, n) = (out.dim(rank - 2) as f64, out.dim(rank - 1) as f64);
            // Does the counterpart operand fit?
            let other_idx = 1 - read.operand_idx.min(1);
            let other = &graph.tensor(member.inputs[other_idx]).shape;
            let other_fits = (other.numel() * elem) as f64 <= cache_bytes(&read.layout);
            if other_fits {
                1.0
            } else if read.operand_idx == 0 {
                (n / eff_tile_n).max(1.0)
            } else {
                (m / eff_tile_m).max(1.0)
            }
        }
        Op::Conv2d { groups: g, .. } => {
            let w = &graph.tensor(member.inputs[1]).shape;
            match read.operand_idx {
                0 => {
                    // x reused across output channels of its group.
                    let w_fits = (w.numel() * elem) as f64 <= cache_bytes(&read.layout);
                    if w_fits {
                        1.0
                    } else {
                        ((w.dim(0) / g).max(1) as f64 / 32.0).max(1.0)
                    }
                }
                1 => {
                    // weights reused across the spatial domain.
                    let out = &graph.tensor(member.outputs[0]).shape;
                    let spatial = (out.dim(2) * out.dim(3)) as f64;
                    (spatial / (eff_tile_m * eff_tile_n)).clamp(1.0, 8.0)
                }
                _ => 1.0,
            }
        }
        // Normalizations make two passes (statistics + apply).
        Op::LayerNorm { .. } | Op::InstanceNorm | Op::Softmax { .. } => 2.0,
        _ => 1.0,
    }
}

/// Pull-back map of a retained transformation kernel's own operation.
fn own_pullback(graph: &Graph, group: &KernelGroup) -> Option<IndexMap> {
    let node = graph.node(group.anchor);
    if !is_eliminable(&node.op) {
        return None;
    }
    let in_dims = graph.tensor(node.inputs[0]).shape.dims().to_vec();
    let out_dims = graph.tensor(node.outputs[0]).shape.dims().to_vec();
    Some(op_pullback(&node.op, &in_dims, &out_dims, 0).simplify())
}

/// Analytic reads-per-output-point for an anchor operand.
fn per_point_reads(graph: &Graph, op: &Op, read: &EdgeRead, anchor_out: &Shape) -> f64 {
    let decl = &graph.tensor(read.logical).shape;
    match op {
        Op::Conv2d { .. } => match read.operand_idx {
            0 | 1 => {
                let member = graph.node(read.member);
                let w = &graph.tensor(member.inputs[1]).shape;
                (w.dim(1) * w.dim(2) * w.dim(3)) as f64
            }
            _ => 1.0,
        },
        Op::MatMul { trans_a, .. } => {
            let a = &graph.tensor(graph.node(read.member).inputs[0]).shape;
            let k = if *trans_a { a.dim(a.rank() - 2) } else { a.dim(a.rank() - 1) };
            k as f64
        }
        Op::LayerNorm { .. } | Op::InstanceNorm | Op::Softmax { .. } => 2.0,
        Op::Reduce { axes, .. } if read.operand_idx == 0 => {
            axes.iter().map(|&a| decl.dim(a) as f64).product()
        }
        Op::Pool2d { kernel, .. } => (kernel.0 * kernel.1) as f64,
        Op::Concat { axis } => {
            let out_extent = anchor_out.dim(*axis) as f64;
            decl.dim(*axis) as f64 / out_extent
        }
        _ => 1.0,
    }
}

/// Hash signature of a group for trace memoization.
fn group_signature(graph: &Graph, group: &KernelGroup) -> u64 {
    let mut h = DefaultHasher::new();
    let anchor = graph.node(group.anchor);
    format!("{:?}", anchor.op).hash(&mut h);
    graph.tensor(anchor.outputs[0]).shape.dims().hash(&mut h);
    graph.tensor(group.output).shape.dims().hash(&mut h);
    format!("{}", group.output_layout).hash(&mut h);
    for r in &group.reads {
        graph.tensor(r.source).shape.dims().hash(&mut h);
        format!("{}", r.layout).hash(&mut h);
        r.operand_idx.hash(&mut h);
        graph.node(r.member).op.mnemonic().hash(&mut h);
        (r.member == group.anchor).hash(&mut h);
        if let Some(m) = &r.map {
            format!("{m}").hash(&mut h);
        }
    }
    h.finish()
}

/// Granule key of a physical address: cache line for buffers, 2-D tile
/// for textures (Table 2's 2.5D locality).
fn granule_key(addr: PhysicalAddress, device: &DeviceConfig, elem: u64) -> u64 {
    match addr {
        PhysicalAddress::Linear(off) => (off * elem) / device.buffer_cache.line_bytes as u64,
        PhysicalAddress::Texel { x, y, .. } => {
            let tx = x / device.texture_tiling.tile_w;
            let ty = y / device.texture_tiling.tile_h;
            (ty << 24) | tx | (1 << 62)
        }
    }
}

fn elem_key(addr: PhysicalAddress) -> u64 {
    match addr {
        PhysicalAddress::Linear(off) => off,
        PhysicalAddress::Texel { x, y, lane } => (y << 26) | (x << 2) | lane as u64 | (1 << 62),
    }
}

/// Runs the sampled trace and measures per-operand line drag.
fn trace_group(graph: &Graph, group: &KernelGroup, device: &DeviceConfig, elem: u64) -> GroupTrace {
    let anchor = graph.node(group.anchor);
    let anchor_out = graph.tensor(anchor.outputs[0]).shape.clone();
    let out_shape = graph.tensor(group.output).shape.clone();
    let own_map = own_pullback(graph, group);

    let anchor_samples = sample_subvolume(anchor_out.dims(), MAX_OUT_SAMPLES);
    let out_samples = sample_subvolume(out_shape.dims(), MAX_OUT_SAMPLES);

    let granule_bytes = |layout: &smartmem_ir::Layout| -> f64 {
        match layout.memory_class() {
            MemoryClass::Buffer1D => device.buffer_cache.line_bytes as f64,
            MemoryClass::Texture2p5D => {
                (device.texture_tiling.tile_w * device.texture_tiling.tile_h * 4 * elem) as f64
            }
        }
    };
    let max_drag = |layout: &smartmem_ir::Layout| -> f64 { granule_bytes(layout) / elem as f64 };

    let mut reads = Vec::with_capacity(group.reads.len());
    let mut scratch = Vec::new();
    for read in &group.reads {
        let src_shape = graph.tensor(read.source).shape.clone();
        let is_anchor_read = read.member == group.anchor;
        let samples = if is_anchor_read { &anchor_samples } else { &out_samples };
        let decl_dims = graph.tensor(read.logical).shape.dims().to_vec();
        let mut elems: HashSet<u64> = HashSet::new();
        let mut granules: HashSet<u64> = HashSet::new();
        for coord in samples {
            scratch.clear();
            if is_anchor_read {
                anchor_read_coords(
                    graph,
                    &anchor.op,
                    read,
                    coord,
                    &decl_dims,
                    own_map.as_ref(),
                    &mut scratch,
                );
            } else {
                scratch.push(clamp_broadcast(coord, &decl_dims));
            }
            for decl_coord in &scratch {
                let src_coord = match &read.map {
                    None => decl_coord.clone(),
                    Some(m) => m.eval(decl_coord),
                };
                let addr = read.layout.address(&src_shape, &src_coord);
                elems.insert(elem_key(addr));
                granules.insert(granule_key(addr, device, elem));
            }
        }
        let useful = (elems.len() as f64 * elem as f64).max(1.0);
        let dragged = granules.len() as f64 * granule_bytes(&read.layout);
        let drag = (dragged / useful).clamp(1.0, max_drag(&read.layout));
        reads.push(EdgeTrace { drag });
    }

    // Writes are coalesced by construction: the kernel's thread order
    // follows the output layout and GPU write-combining absorbs the
    // residual scatter (this is also why the paper finds sub-optimal
    // *writes* cheaper than sub-optimal *reads*, SS3.2.2).
    let _ = out_shape;
    let write = EdgeTrace { drag: 1.0 };
    GroupTrace { reads, write }
}

/// Contiguous sub-volume of `dims` with at most `budget` points,
/// allocated innermost-first.
fn sample_subvolume(dims: &[usize], budget: usize) -> Vec<Vec<usize>> {
    let mut window = vec![1usize; dims.len()];
    let mut remaining = budget.max(1);
    for i in (0..dims.len()).rev() {
        let take = dims[i].min(remaining);
        window[i] = take.max(1);
        remaining = (remaining / window[i]).max(1);
    }
    let total: usize = window.iter().product();
    let mut coords = Vec::with_capacity(total);
    let mut c = vec![0usize; dims.len()];
    for _ in 0..total {
        coords.push(c.clone());
        for d in (0..dims.len()).rev() {
            c[d] += 1;
            if c[d] < window[d] {
                break;
            }
            c[d] = 0;
        }
    }
    coords
}

/// Right-aligned broadcast clamp of an iteration coordinate onto a
/// (possibly lower-rank / size-1) operand shape.
fn clamp_broadcast(coord: &[usize], decl_dims: &[usize]) -> Vec<usize> {
    let shift = decl_dims.len() as isize - coord.len() as isize;
    decl_dims
        .iter()
        .enumerate()
        .map(|(j, &d)| {
            let ci = j as isize - shift;
            let c = if ci >= 0 { coord.get(ci as usize).copied().unwrap_or(0) } else { 0 };
            c.min(d.saturating_sub(1))
        })
        .collect()
}

/// SplitMix64 for pseudo-random gather rows.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Generates the declared-space coordinates read by the anchor for one
/// output point (inner loops sampled up to [`MAX_INNER`]).
fn anchor_read_coords(
    graph: &Graph,
    op: &Op,
    read: &EdgeRead,
    out_coord: &[usize],
    decl_dims: &[usize],
    own_map: Option<&IndexMap>,
    out: &mut Vec<Vec<usize>>,
) {
    match op {
        Op::Conv2d { stride, padding, groups } => {
            let member = graph.node(read.member);
            let w = graph.tensor(member.inputs[1]).shape.clone();
            let (cpg, kh, kw) = (w.dim(1), w.dim(2), w.dim(3));
            let (n, oc, oh, ow) = (out_coord[0], out_coord[1], out_coord[2], out_coord[3]);
            let o_per_g = w.dim(0) / groups;
            let g_idx = oc / o_per_g.max(1);
            let mut emitted = 0usize;
            'outer: for ic in 0..cpg {
                for dh in 0..kh {
                    for dw in 0..kw {
                        if emitted >= MAX_INNER {
                            break 'outer;
                        }
                        emitted += 1;
                        match read.operand_idx {
                            0 => {
                                let ih = (oh * stride.0 + dh) as isize - padding.0 as isize;
                                let iw = (ow * stride.1 + dw) as isize - padding.1 as isize;
                                if ih < 0
                                    || iw < 0
                                    || ih as usize >= decl_dims[2]
                                    || iw as usize >= decl_dims[3]
                                {
                                    continue;
                                }
                                out.push(vec![n, g_idx * cpg + ic, ih as usize, iw as usize]);
                            }
                            1 => out.push(vec![oc, ic, dh, dw]),
                            _ => {
                                out.push(vec![oc.min(decl_dims[0].saturating_sub(1))]);
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        Op::MatMul { trans_a, trans_b } => {
            let rank = decl_dims.len();
            let k_extent = match read.operand_idx {
                0 => {
                    if *trans_a {
                        decl_dims[rank - 2]
                    } else {
                        decl_dims[rank - 1]
                    }
                }
                _ => {
                    if *trans_b {
                        decl_dims[rank - 1]
                    } else {
                        decl_dims[rank - 2]
                    }
                }
            };
            let or = out_coord.len();
            let (m, n) = (out_coord[or - 2], out_coord[or - 1]);
            let batch = clamp_broadcast(&out_coord[..or - 2], &decl_dims[..rank - 2]);
            for k in 0..k_extent.min(MAX_INNER) {
                let mut c = batch.clone();
                match read.operand_idx {
                    0 => {
                        if *trans_a {
                            c.push(k);
                            c.push(m.min(decl_dims[rank - 1] - 1));
                        } else {
                            c.push(m.min(decl_dims[rank - 2] - 1));
                            c.push(k);
                        }
                    }
                    _ => {
                        if *trans_b {
                            c.push(n.min(decl_dims[rank - 2] - 1));
                            c.push(k);
                        } else {
                            c.push(k);
                            c.push(n.min(decl_dims[rank - 1] - 1));
                        }
                    }
                }
                out.push(c);
            }
        }
        Op::LayerNorm { axes } | Op::Reduce { axes, .. } => {
            reduction_space_coords(out_coord, decl_dims, axes, out);
        }
        Op::InstanceNorm => {
            reduction_space_coords(out_coord, decl_dims, &[2, 3], out);
        }
        Op::Softmax { axis } => {
            reduction_space_coords(out_coord, decl_dims, &[*axis], out);
        }
        Op::Pool2d { kernel, stride, padding, .. } => {
            let (n, c0, oh, ow) = (out_coord[0], out_coord[1], out_coord[2], out_coord[3]);
            let mut emitted = 0;
            for dh in 0..kernel.0 {
                for dw in 0..kernel.1 {
                    if emitted >= MAX_INNER {
                        return;
                    }
                    let ih = (oh * stride.0 + dh) as isize - padding.0 as isize;
                    let iw = (ow * stride.1 + dw) as isize - padding.1 as isize;
                    if ih < 0
                        || iw < 0
                        || ih as usize >= decl_dims[2]
                        || iw as usize >= decl_dims[3]
                    {
                        continue;
                    }
                    out.push(vec![n, c0, ih as usize, iw as usize]);
                    emitted += 1;
                }
            }
        }
        Op::Gather { axis } => {
            if read.operand_idx == 0 {
                let lin: u64 = out_coord.iter().fold(0u64, |acc, &c| acc * 31 + c as u64);
                let row = (splitmix(lin) % decl_dims[*axis].max(1) as u64) as usize;
                let mut c = clamp_broadcast(out_coord, decl_dims);
                c[*axis] = row;
                out.push(c);
            } else {
                out.push(clamp_broadcast(out_coord, decl_dims));
            }
        }
        Op::Concat { axis } => {
            let member = graph.node(read.member);
            let mut offset = 0usize;
            for (i, &input) in member.inputs.iter().enumerate() {
                let extent = graph.tensor(input).shape.dim(*axis);
                if i == read.operand_idx {
                    let pos = out_coord[*axis];
                    if pos >= offset && pos < offset + extent {
                        let mut c = out_coord.to_vec();
                        c[*axis] = pos - offset;
                        out.push(clamp_broadcast(&c, decl_dims));
                    }
                    return;
                }
                offset += extent;
            }
        }
        _ => {
            let decl = match own_map {
                Some(m) => m.eval(out_coord),
                None => clamp_broadcast(out_coord, decl_dims),
            };
            out.push(decl);
        }
    }
}

/// Coordinates covering the reduction space of normalization/reduction
/// operators: non-reduced dims come from the output coordinate, reduced
/// dims iterate (sampled).
fn reduction_space_coords(
    out_coord: &[usize],
    decl_dims: &[usize],
    axes: &[usize],
    out: &mut Vec<Vec<usize>>,
) {
    let keeps_rank = out_coord.len() == decl_dims.len();
    let mut template = vec![0usize; decl_dims.len()];
    if keeps_rank {
        for (j, t) in template.iter_mut().enumerate() {
            *t = out_coord[j].min(decl_dims[j] - 1);
        }
    } else {
        let mut oi = 0;
        for (j, t) in template.iter_mut().enumerate() {
            if axes.contains(&j) {
                continue;
            }
            *t = out_coord.get(oi).copied().unwrap_or(0).min(decl_dims[j] - 1);
            oi += 1;
        }
    }
    let red_total: usize = axes.iter().map(|&a| decl_dims[a]).product();
    for step in 0..red_total.min(MAX_INNER) {
        let mut c = template.clone();
        let mut rem = step;
        for &a in axes.iter().rev() {
            c[a] = rem % decl_dims[a];
            rem /= decl_dims[a];
        }
        out.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Framework, SmartMemConfig, SmartMemPipeline};
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    fn small_model() -> Graph {
        let mut b = GraphBuilder::new("small");
        let x = b.input("x", &[1, 32, 64], DType::F16);
        let w = b.weight("w", &[64, 64], DType::F16);
        let mm = b.matmul(x, w);
        let r = b.reshape(mm, &[1, 8, 4, 64]);
        let t = b.transpose(r, &[0, 2, 1, 3]);
        let g = b.unary(t, UnaryKind::Gelu);
        b.output(g);
        b.finish()
    }

    #[test]
    fn estimate_produces_positive_latency() {
        let g = small_model();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        let r = opt.estimate(&device);
        assert!(r.latency_ms > 0.0);
        assert!(r.gmacs > 0.0);
        assert_eq!(r.kernel_count, opt.groups.len());
        assert!(r.peak_memory_bytes > 0);
    }

    #[test]
    fn smartmem_beats_unoptimized_levels() {
        let g = small_model();
        let device = DeviceConfig::snapdragon_8gen2();
        let full = SmartMemPipeline::new().optimize(&g, &device).unwrap().estimate(&device);
        let base = SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level())
            .optimize(&g, &device)
            .unwrap()
            .estimate(&device);
        assert!(
            full.latency_ms < base.latency_ms,
            "full {} vs base {}",
            full.latency_ms,
            base.latency_ms
        );
    }

    #[test]
    fn transform_kernels_attributed_when_retained() {
        let g = small_model();
        let device = DeviceConfig::snapdragon_8gen2();
        let base = SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level())
            .optimize(&g, &device)
            .unwrap()
            .estimate(&device);
        assert!(base.explicit_ms > 0.0, "retained reshape/transpose kernels must show up");
        let full = SmartMemPipeline::new().optimize(&g, &device).unwrap().estimate(&device);
        assert_eq!(full.explicit_ms, 0.0, "SmartMem eliminates the transforms");
    }

    #[test]
    fn dram_traffic_near_footprint_for_elementwise() {
        // A pure element-wise kernel on contiguous data should move
        // roughly in+out bytes, not orders of magnitude more.
        let mut b = GraphBuilder::new("ew");
        let x = b.input("x", &[1024, 1024], DType::F16);
        let y = b.unary(x, UnaryKind::Gelu);
        b.output(y);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        let r = opt.estimate(&device);
        let footprint = 2.0 * 1024.0 * 1024.0 * 2.0;
        assert!(
            (r.dram_bytes as f64) < 3.0 * footprint,
            "dram {} vs footprint {}",
            r.dram_bytes,
            footprint
        );
        assert!((r.dram_bytes as f64) >= footprint * 0.8);
    }

    #[test]
    fn sample_subvolume_bounds() {
        let s = sample_subvolume(&[1000, 1000], 256);
        assert!(s.len() <= 256);
        assert!(!s.is_empty());
        let s = sample_subvolume(&[2, 2], 256);
        assert_eq!(s.len(), 4);
        let s = sample_subvolume(&[], 16);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clamp_broadcast_right_aligns() {
        assert_eq!(clamp_broadcast(&[3, 5, 7], &[8, 8]), vec![5, 7]);
        assert_eq!(clamp_broadcast(&[3, 5, 7], &[1, 8]), vec![0, 7]);
        assert_eq!(clamp_broadcast(&[2], &[4, 4]), vec![0, 2]);
    }

    #[test]
    fn peak_memory_pooled_below_unpooled() {
        let g = small_model();
        let device = DeviceConfig::snapdragon_8gen2();
        let mut opt = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        opt.mem_model.pooled = true;
        let pooled = opt.peak_memory(&device);
        opt.mem_model.pooled = false;
        let unpooled = opt.peak_memory(&device);
        assert!(pooled <= unpooled);
    }

    #[test]
    fn reduction_space_coords_cover_axes() {
        let mut out = Vec::new();
        reduction_space_coords(&[2, 3], &[4, 8, 6], &[1], &mut out);
        assert!(out.len() <= MAX_INNER);
        for c in &out {
            assert_eq!(c[0], 2);
            assert_eq!(c[2], 3);
        }
        let axis_vals: std::collections::HashSet<usize> = out.iter().map(|c| c[1]).collect();
        assert!(axis_vals.len() > 1);
    }
}
