//! # smartmem-core
//!
//! The SmartMem optimizer — the primary contribution of the paper
//! (*SmartMem: Layout Transformation Elimination and Adaptation for
//! Efficient DNN Execution on Mobile*, ASPLOS'24) — implemented over the
//! `smartmem-ir` graph representation and the `smartmem-sim` device
//! model:
//!
//! 1. **Operator classification** ([`classify`], Tables 3–4): every
//!    operator lands in one of four quadrants of (input-layout
//!    dependence × output-layout customizability).
//! 2. **Combination rules** ([`combine_action`], Tables 5–6): pairwise
//!    producer→consumer actions — keep both, try fuse, eliminate
//!    first/second/both — plus the resulting class and layout-search
//!    policy.
//! 3. **Layout Transformation Elimination** ([`eliminate`], §3.2.1):
//!    `Reshape`/`Transpose`/`DepthToSpace`/`SpaceToDepth`/`Slice`/
//!    `Split` chains become composed, strength-reduced index maps on the
//!    surviving edges.
//! 4. **Fusion** ([`fuse`]): DNNFusion-style grouping, which after
//!    elimination finds strictly more opportunities (Table 7).
//! 5. **Reduction-dimension layout selection** ([`select_layouts`],
//!    §3.2.2) with redundant-copy accounting (§4.6).
//! 6. **2.5D texture mapping** ([`place_texture`], §3.3, Fig. 5) and
//!    **GA auto-tuning** ([`GaTuner`]).
//! 7. A shared [`OptimizedGraph`] + [`estimate`](OptimizedGraph::estimate)
//!    pipeline output consumed by the baseline frameworks as well, so
//!    all Table 7/8 comparisons run through identical machinery.
//!
//! The steps above are packaged as [`Pass`]es ([`LtePass`],
//! [`FusionPass`], [`AssembleGroupsPass`], [`LayoutSelectPass`],
//! [`TunePass`]) executed by the [`PassManager`]; a [`Framework`] is a
//! name plus a declarative pass sequence. The [`CompileSession`] layer
//! adds a content-hash compilation cache and parallel batch compilation
//! on top.
//!
//! # Example
//!
//! ```
//! use smartmem_core::{Framework, SmartMemPipeline};
//! use smartmem_ir::{DType, GraphBuilder};
//! use smartmem_sim::DeviceConfig;
//!
//! let mut b = GraphBuilder::new("toy");
//! let x = b.input("x", &[1, 16, 32], DType::F16);
//! let w = b.weight("w", &[32, 32], DType::F16);
//! let mm = b.matmul(x, w);
//! let t = b.transpose(mm, &[0, 2, 1]);
//! let out = b.softmax(t, 2);
//! b.output(out);
//! let graph = b.finish();
//!
//! let device = DeviceConfig::snapdragon_8gen2();
//! let optimized = SmartMemPipeline::new().optimize(&graph, &device).unwrap();
//! assert!(optimized.stats.eliminated_ops >= 1); // the transpose is gone
//! let report = optimized.estimate(&device);
//! assert!(report.latency_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod combine;
mod estimate;
mod fusion;
mod groupcache;
mod layout_select;
mod lte;
mod pass;
mod persist;
mod pipeline;
mod reduction;
mod session;
mod streamline;
mod texture;
mod tune;

pub use classify::{classify, InputDep, OpClass, OutputKind};
pub use combine::{combine_action, result_class, search_policy, CombineAction, SearchPolicy};
pub use estimate::{GroupReport, ModelReport};
pub use fusion::{fuse, GroupDraft};
pub use groupcache::{group_content_hash, GroupCache, GroupCacheStats, GroupDecisions};
pub use layout_select::{
    kv_cache_layout, required_dims, select_layouts, RedundancyStats, SelectionLevel,
};
pub use lte::{
    eliminate, eliminate_with_options, is_eliminable, lte_memo_len, op_pullback, EdgeSource,
    LteResult,
};
pub use pass::{
    AssembleGroupsPass, CompileCtx, CompileOutput, Diagnostic, FusionPass, GroupRefine,
    LayoutSelectPass, LtePass, Pass, PassManager, PassTiming, TunePass,
};
pub use pipeline::{
    assemble_groups, group_class, iteration_mn, EdgeRead, Framework, KernelGroup, MemModel,
    OptStats, OptimizedGraph, SmartMemConfig, SmartMemPipeline, Unsupported,
};
pub use reduction::reduction_dims;
pub use streamline::{
    AbsorbTransposePass, CancelTransposePass, CollapseRepeatedPass, ConstFoldPass, CsePass,
    MoveTransposePass, RemoveIdentityPass, StreamlinePass,
};

pub use session::{
    device_fingerprint, graph_fingerprint, CacheStats, CompileResult, CompileSession,
};
pub use texture::{fits_texture, place_buffer, place_texture, MAX_TEXTURE_EXTENT};
pub use tune::{base_utilization, utilization, ExecConfig, GaTuner};
