//! Reduction-dimension-based layout selection (§3.2.2, Fig. 4).
//!
//! Local step: the producer of each edge writes in the layout preferred
//! by the consumer's reduction dimension ("sub-optimally writing results
//! turns out to be better than sub-optimally reading input data").
//! Global step: a producer with several consumers combines the first
//! *k* distinct reduction-dimension requirements (k = 2 on 2.5D texture
//! memory, where both texture axes are directly addressable); further
//! requirements are served by *redundant copies* of the tensor (§4.6).

use crate::pipeline::{EdgeRead, KernelGroup};
use crate::reduction::reduction_dims;
use crate::texture::{fits_texture, place_buffer, place_texture};
use smartmem_ir::{Graph, Layout, TensorId, TensorKind};
use smartmem_sim::DeviceConfig;
use std::collections::HashMap;

/// How layouts are chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionLevel {
    /// Framework default: texture with the last logical dim on X (when
    /// the device has texture memory), otherwise row-major buffers.
    /// This is the DNNFusion baseline's behaviour.
    Default,
    /// Reduction-dimension selection with `k = 1`: the primary
    /// requirement goes innermost; conflicting requirements need copies.
    ReductionK1,
    /// Full SmartMem: combine up to two requirements per tensor on the
    /// texture's two axes (`k = 2`), vec4-pack the primary reduction dim.
    ReductionK2,
}

/// Redundant-copy statistics (§4.6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RedundancyStats {
    /// Activation tensors that needed at least one extra copy.
    pub tensors: usize,
    /// Largest single redundant copy in bytes.
    pub max_bytes: u64,
    /// Total extra bytes across all copies.
    pub total_extra_bytes: u64,
}

/// Reduction-dimension requirement of one read, expressed as dimensions
/// of the *materialized source* tensor.
pub fn required_dims(graph: &Graph, read: &EdgeRead) -> Vec<usize> {
    let member = graph.node(read.member);
    let decl_shape = &graph.tensor(read.logical).shape;
    let rdims = reduction_dims(&member.op, read.operand_idx, decl_shape);
    if rdims.is_empty() {
        return Vec::new();
    }
    match &read.map {
        None => rdims,
        Some(m) => {
            // The contiguity requirement lands on the source dim that
            // tracks the reduction variable with unit stride (an
            // identity component). Source dims that merely *mention* a
            // reduction variable inside a split/merge expression do not
            // need to be contiguous — flagging them too would fabricate
            // conflicting requirements (and redundant copies) that the
            // paper reports as rare (§4.6).
            let mut identity = Vec::new();
            let mut touched = Vec::new();
            for (j, e) in m.exprs().iter().enumerate() {
                let vars = e.vars();
                if vars.iter().any(|v| rdims.contains(v)) {
                    touched.push(j);
                    if e.as_var().is_some_and(|v| rdims.contains(&v)) {
                        identity.push(j);
                    }
                }
            }
            if !identity.is_empty() {
                identity
            } else {
                touched.truncate(1);
                touched
            }
        }
    }
}

fn layout_for(
    dims: &[usize],
    reqs: &[usize],
    device: &DeviceConfig,
    level: SelectionLevel,
) -> Layout {
    // Everything layout selection needs to know about the device is its
    // capability descriptor — never its name: a texture path to target,
    // and that path's per-axis extent limit.
    let caps = &device.caps;
    let rank = dims.len();
    if rank == 0 {
        return Layout::row_major(0);
    }
    let make = |r0: usize, r1: Option<usize>| -> Layout {
        if caps.texture_path {
            let l = place_texture(dims, r0, r1, true, caps.max_texture_extent);
            if fits_texture(&l, &smartmem_ir::Shape::new(dims.to_vec()), caps.max_texture_extent) {
                l
            } else {
                place_buffer(dims, Some(r0))
            }
        } else {
            place_buffer(dims, Some(r0))
        }
    };
    match level {
        SelectionLevel::Default => {
            // Baseline frameworks only place conv-shaped (rank-4)
            // tensors in texture memory (TVM's texture schedules and
            // MNN's OpenCL images are conv-centric); transformer
            // activations stay in 1D buffers.
            if caps.texture_path && rank == 4 {
                let l = Layout::texture_default(rank);
                if fits_texture(
                    &l,
                    &smartmem_ir::Shape::new(dims.to_vec()),
                    caps.max_texture_extent,
                ) {
                    l
                } else {
                    Layout::row_major(rank)
                }
            } else {
                Layout::row_major(rank)
            }
        }
        SelectionLevel::ReductionK1 => make(reqs.first().copied().unwrap_or(rank - 1), None),
        SelectionLevel::ReductionK2 => {
            make(reqs.first().copied().unwrap_or(rank - 1), reqs.get(1).copied())
        }
    }
}

/// Number of requirement slots a single layout can satisfy at `level`.
fn k_of(level: SelectionLevel) -> usize {
    match level {
        SelectionLevel::Default => usize::MAX, // no requirements honoured anyway
        SelectionLevel::ReductionK1 => 1,
        SelectionLevel::ReductionK2 => 2,
    }
}

/// The *global* half of layout selection: per-tensor requirement lists,
/// primary layouts, redundant-copy layouts, and the resulting
/// statistics. Computed once over all groups ([`plan_layouts`]), then
/// applied to each group independently ([`apply_group_layouts`]) — the
/// split is what lets the incremental compiler reuse cached decisions
/// for unchanged groups while still reporting exact whole-model
/// redundancy statistics.
#[derive(Clone, Debug)]
pub(crate) struct LayoutPlan {
    level: SelectionLevel,
    /// Ordered, distinct reduction-dimension requirements per
    /// materialized tensor (the cross-group coupling of §3.2.2).
    reqs_of: HashMap<TensorId, Vec<usize>>,
    primary: HashMap<TensorId, Layout>,
    /// Redundant copies per over-constrained tensor: (req dim, layout).
    copies: HashMap<TensorId, Vec<(usize, Layout)>>,
    /// Copy count charged to the tensor's producing group.
    extra_copies_of: HashMap<TensorId, usize>,
    /// Whole-model redundancy statistics (§4.6).
    pub(crate) stats: RedundancyStats,
}

/// Computes the global layout plan over all groups (steps 1–2 of
/// §3.2.2): collect requirements, pick primary layouts, and provision
/// redundant copies for requirements beyond the first *k* (weights are
/// pre-packed offline and never need runtime copies).
pub(crate) fn plan_layouts(
    graph: &Graph,
    groups: &[KernelGroup],
    device: &DeviceConfig,
    level: SelectionLevel,
) -> LayoutPlan {
    // 1. Collect ordered, distinct requirements per materialized tensor.
    let mut reqs_of: HashMap<TensorId, Vec<usize>> = HashMap::new();
    for g in groups.iter() {
        for r in &g.reads {
            let req = required_dims(graph, r);
            let entry = reqs_of.entry(r.source).or_default();
            for d in req {
                if !entry.contains(&d) {
                    entry.push(d);
                }
            }
        }
    }

    // 2. Primary layout per tensor; extra copies for requirements
    //    beyond the first k.
    let elem = device.dtype.size_bytes();
    let mut primary: HashMap<TensorId, Layout> = HashMap::new();
    let mut copies: HashMap<TensorId, Vec<(usize, Layout)>> = HashMap::new();
    let mut extra_copies_of: HashMap<TensorId, usize> = HashMap::new();
    let mut stats = RedundancyStats::default();

    let all_tensors: Vec<TensorId> = {
        let mut v: Vec<TensorId> = groups.iter().map(|g| g.output).collect();
        v.extend(groups.iter().flat_map(|g| g.reads.iter().map(|r| r.source)));
        v.sort_unstable();
        v.dedup();
        v
    };

    for &t in &all_tensors {
        let info = graph.tensor(t);
        // Plan over ceiling-padded dims: on symbolic graphs every bucket
        // then makes identical (dim-index-based) layout decisions, and
        // texture-fit checks at the ceiling are conservative for every
        // smaller bucket. Static graphs pad to their concrete dims.
        let dims = graph.padded_dims(t);
        let reqs = reqs_of.get(&t).cloned().unwrap_or_default();
        primary.insert(t, layout_for(&dims, &reqs, device, level));
        let k = k_of(level);
        if info.kind == TensorKind::Weight {
            // Offline pre-packing: each consumer can have its own layout
            // at zero runtime cost; model as per-read layouts below.
            continue;
        }
        if reqs.len() > k && level != SelectionLevel::Default {
            let extra: Vec<(usize, Layout)> =
                reqs[k..].iter().map(|&d| (d, layout_for(&dims, &[d], device, level))).collect();
            let bytes = info.shape.numel() * elem;
            stats.tensors += 1;
            stats.max_bytes = stats.max_bytes.max(bytes);
            stats.total_extra_bytes += bytes * extra.len() as u64;
            extra_copies_of.insert(t, extra.len());
            copies.insert(t, extra);
        }
    }
    LayoutPlan { level, reqs_of, primary, copies, extra_copies_of, stats }
}

/// Digest of everything a single group's layout decisions depend on
/// *beyond its own content*: the full requirement lists of its output
/// and of each tensor it reads. Two compilations in which these digests
/// (and the group content hashes) agree make identical layout decisions
/// for the group, so the digest is part of the group's cache key.
pub(crate) fn group_layout_context(plan: &LayoutPlan, g: &KernelGroup) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    (plan.level as u8).hash(&mut h);
    plan.reqs_of.get(&g.output).hash(&mut h);
    for r in &g.reads {
        plan.reqs_of.get(&r.source).hash(&mut h);
    }
    h.finish()
}

/// Applies the plan to one group (step 3 of §3.2.2): sets the output
/// layout, points every read at the primary layout or the redundant
/// copy satisfying its requirement, and charges the group for copies of
/// its output tensor.
pub(crate) fn apply_group_layouts(
    plan: &LayoutPlan,
    graph: &Graph,
    g: &mut KernelGroup,
    device: &DeviceConfig,
) {
    let level = plan.level;
    g.output_layout = plan
        .primary
        .get(&g.output)
        .cloned()
        .unwrap_or_else(|| layout_for(&graph.padded_dims(g.output), &[], device, level));
    g.extra_copies = plan.extra_copies_of.get(&g.output).copied().unwrap_or(0);
    // Avoid borrowing issues: compute requirements first.
    let reqs: Vec<Vec<usize>> = g.reads.iter().map(|r| required_dims(graph, r)).collect();
    for (r, req) in g.reads.iter_mut().zip(reqs) {
        let info = graph.tensor(r.source);
        let dims = graph.padded_dims(r.source);
        if info.kind == TensorKind::Weight && level != SelectionLevel::Default {
            // Pre-packed per consumer.
            r.layout = layout_for(&dims, &req, device, level);
            continue;
        }
        let prim =
            plan.primary.get(&r.source).cloned().unwrap_or_else(|| Layout::row_major(dims.len()));
        let mut chosen = prim.clone();
        if let (Some(&want), Some(extra)) = (req.first(), plan.copies.get(&r.source)) {
            let satisfied_by_primary = {
                let all = plan.reqs_of.get(&r.source).cloned().unwrap_or_default();
                let k = k_of(level);
                all.iter().take(k).any(|&d| d == want)
            };
            if !satisfied_by_primary {
                if let Some((_, l)) = extra.iter().find(|(d, _)| *d == want) {
                    chosen = l.clone();
                }
            }
        }
        r.layout = chosen;
    }
}

/// Chooses layouts for every read and every group output; returns the
/// redundant-copy statistics. Equivalent to `plan_layouts` (the global
/// planning steps) followed by `apply_group_layouts` on every group.
pub fn select_layouts(
    graph: &Graph,
    groups: &mut [KernelGroup],
    device: &DeviceConfig,
    level: SelectionLevel,
) -> RedundancyStats {
    let plan = plan_layouts(graph, groups, device, level);
    for g in groups.iter_mut() {
        apply_group_layouts(&plan, graph, g, device);
    }
    plan.stats
}

/// Layout for a decode-serving KV-cache tensor, chosen once per
/// (model, device, bucket) by the serving tier.
///
/// Attention reads the cache two ways in every decode step: `QKᵀ`
/// reduces over the head dimension (the innermost axis of a
/// `[batch·heads, seq, head_dim]` cache) and the attention-weighted `V`
/// product reduces over the sequence axis. Running the standard
/// reduction-dimension selection at `k = 2` combines both requirements
/// in a single layout on 2.5D texture memory — no redundant copy — and
/// degrades to a sequence-major buffer on buffer-only devices. Pass the
/// **ceiling-padded** dims ([`Graph::padded_dims`]) so the choice is
/// valid for every bucket the cache will ever be grown to.
pub fn kv_cache_layout(padded_dims: &[usize], device: &DeviceConfig) -> Layout {
    let rank = padded_dims.len();
    if rank < 2 {
        return layout_for(padded_dims, &[], device, SelectionLevel::ReductionK2);
    }
    layout_for(padded_dims, &[rank - 1, rank - 2], device, SelectionLevel::ReductionK2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::lte::eliminate;
    use crate::pipeline::assemble_groups;
    use smartmem_ir::{DType, GraphBuilder, MemoryClass, ReduceKind};

    /// Fig. 4-style graph: one MatMul feeding consumers with different
    /// reduction dimensions.
    fn fig4_graph() -> Graph {
        let mut b = GraphBuilder::new("fig4");
        let x = b.input("x", &[64, 96], DType::F16);
        let w = b.weight("w", &[96, 128], DType::F16);
        let mm = b.matmul(x, w); // [64, 128]
        let r0 = b.reduce(mm, ReduceKind::Sum, vec![0], false); // reduction dim 0
        let r1 = b.reduce(mm, ReduceKind::Sum, vec![1], false); // reduction dim 1
        b.output(r0);
        b.output(r1);
        b.finish()
    }

    fn build_groups(g: &Graph) -> Vec<KernelGroup> {
        let lte = eliminate(g, true, true);
        let drafts = fuse(g, &lte, true);
        assemble_groups(g, &lte, &drafts)
    }

    #[test]
    fn k2_combines_two_requirements_without_copies() {
        let g = fig4_graph();
        let device = DeviceConfig::snapdragon_8gen2();
        let mut groups = build_groups(&g);
        let stats = select_layouts(&g, &mut groups, &device, SelectionLevel::ReductionK2);
        assert_eq!(stats.tensors, 0, "two requirements fit k=2 on 2.5D memory");
        // The matmul output should be a texture with dim 0 on X and dim 1
        // innermost on Y (or vice versa).
        let mm_group = &groups[0];
        assert_eq!(mm_group.output_layout.memory_class(), MemoryClass::Texture2p5D);
    }

    #[test]
    fn k1_needs_a_redundant_copy() {
        let g = fig4_graph();
        let device = DeviceConfig::snapdragon_8gen2();
        let mut groups = build_groups(&g);
        let stats = select_layouts(&g, &mut groups, &device, SelectionLevel::ReductionK1);
        assert_eq!(stats.tensors, 1, "conflicting requirements at k=1 need a copy");
        assert_eq!(stats.max_bytes, 64 * 128 * 2);
        assert_eq!(groups[0].extra_copies, 1);
    }

    #[test]
    fn default_level_ignores_requirements() {
        let g = fig4_graph();
        let device = DeviceConfig::snapdragon_8gen2();
        let mut groups = build_groups(&g);
        let stats = select_layouts(&g, &mut groups, &device, SelectionLevel::Default);
        assert_eq!(stats, RedundancyStats::default());
    }

    #[test]
    fn buffer_device_gets_buffer_layouts() {
        let g = fig4_graph();
        let device = DeviceConfig::tesla_v100();
        let mut groups = build_groups(&g);
        select_layouts(&g, &mut groups, &device, SelectionLevel::ReductionK2);
        for gr in &groups {
            assert_eq!(gr.output_layout.memory_class(), MemoryClass::Buffer1D);
            for r in &gr.reads {
                assert_eq!(r.layout.memory_class(), MemoryClass::Buffer1D);
            }
        }
    }

    #[test]
    fn capabilities_not_names_drive_selection() {
        let g = fig4_graph();
        // Renaming a device must not change a single layout decision.
        let mut renamed = DeviceConfig::snapdragon_8gen2();
        renamed.name = "Totally Unknown SoC".into();
        let mut a = build_groups(&g);
        let mut b = build_groups(&g);
        select_layouts(&g, &mut a, &DeviceConfig::snapdragon_8gen2(), SelectionLevel::ReductionK2);
        select_layouts(&g, &mut b, &renamed, SelectionLevel::ReductionK2);
        for (ga, gb) in a.iter().zip(&b) {
            assert_eq!(ga.output_layout, gb.output_layout);
        }
        // The Mali profile's texture capability lands tensors in 2.5D
        // memory; the server NPU's lack of one lands them in buffers.
        let mut mali = build_groups(&g);
        select_layouts(&g, &mut mali, &DeviceConfig::mali_g710(), SelectionLevel::ReductionK2);
        assert_eq!(mali[0].output_layout.memory_class(), MemoryClass::Texture2p5D);
        let mut npu = build_groups(&g);
        select_layouts(&g, &mut npu, &DeviceConfig::server_npu(), SelectionLevel::ReductionK2);
        for gr in &npu {
            assert_eq!(gr.output_layout.memory_class(), MemoryClass::Buffer1D);
        }
    }

    #[test]
    fn requirements_propagate_through_eliminated_maps() {
        // matmul -> transpose (eliminated) -> softmax(axis=1):
        // softmax's reduction axis maps back through the transpose to
        // dim 0 of the matmul output.
        let mut b = GraphBuilder::new("through-map");
        let x = b.input("x", &[32, 48], DType::F16);
        let w = b.weight("w", &[48, 64], DType::F16);
        let mm = b.matmul(x, w); // [32, 64]
        let t = b.transpose(mm, &[1, 0]); // [64, 32]
        let sm = b.softmax(t, 1); // reduces over dim 1 of the transposed view
        b.output(sm);
        let g = b.finish();
        let groups = {
            let lte = eliminate(&g, true, true);
            let drafts = fuse(&g, &lte, true);
            assemble_groups(&g, &lte, &drafts)
        };
        let softmax_read = groups
            .iter()
            .flat_map(|gr| gr.reads.iter())
            .find(|r| r.map.is_some())
            .expect("softmax reads through the eliminated transpose");
        // Softmax axis 1 of [64, 32] corresponds to dim 0 of [32, 64].
        assert_eq!(required_dims(&g, softmax_read), vec![0]);
    }

    #[test]
    fn kv_cache_layout_tracks_device_capabilities() {
        // [batch·heads, seq(ceiling), head_dim] for the Pythia decode
        // configuration: 4 heads, 128-token ceiling, 48-wide heads.
        let dims = [4, 128, 48];
        let tex = kv_cache_layout(&dims, &DeviceConfig::snapdragon_8gen2());
        assert_eq!(tex.memory_class(), MemoryClass::Texture2p5D);
        assert!(tex.validate(3).is_ok());
        let buf = kv_cache_layout(&dims, &DeviceConfig::tesla_v100());
        assert_eq!(buf.memory_class(), MemoryClass::Buffer1D);
        // Deterministic: the per-bucket serving cache may re-ask freely.
        assert_eq!(tex, kv_cache_layout(&dims, &DeviceConfig::snapdragon_8gen2()));
    }

    #[test]
    fn symbolic_layout_plans_are_bucket_invariant() {
        use smartmem_ir::BucketTable;
        let table = BucketTable::new(vec![32, 64, 128]).unwrap();
        let build = |seq: usize| {
            let mut b = GraphBuilder::new("sym-layout");
            let x = b.input("x", &[1, seq, 48], DType::F16);
            let w = b.weight("w", &[48, 64], DType::F16);
            let mm = b.matmul(x, w);
            let t = b.transpose(mm, &[0, 2, 1]);
            let sm = b.softmax(t, 2);
            b.output(sm);
            b.finish().with_sym_dim("seq", &table, seq).unwrap()
        };
        let (ga, gb) = (build(40), build(100));
        let device = DeviceConfig::snapdragon_8gen2();
        let mut groups_a = build_groups(&ga);
        let mut groups_b = build_groups(&gb);
        select_layouts(&ga, &mut groups_a, &device, SelectionLevel::ReductionK2);
        select_layouts(&gb, &mut groups_b, &device, SelectionLevel::ReductionK2);
        assert_eq!(groups_a.len(), groups_b.len());
        for (a, b) in groups_a.iter().zip(&groups_b) {
            assert_eq!(a.output_layout, b.output_layout, "layouts must not depend on the bucket");
            for (ra, rb) in a.reads.iter().zip(&b.reads) {
                assert_eq!(ra.layout, rb.layout);
            }
        }
    }

    #[test]
    fn weights_never_count_as_redundant() {
        let mut b = GraphBuilder::new("w");
        let x = b.input("x", &[16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let m1 = b.matmul(x, w);
        let m2 = b.matmul_t(x, w, false, true);
        b.output(m1);
        b.output(m2);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        let mut groups = build_groups(&g);
        let stats = select_layouts(&g, &mut groups, &device, SelectionLevel::ReductionK1);
        // w is required along dim 0 by m1 and dim 1 by m2, but weights
        // are pre-packed offline.
        assert_eq!(stats.tensors, 0);
    }
}
