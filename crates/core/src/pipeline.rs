//! The optimized-graph representation shared by SmartMem and the
//! baseline pipelines, plus the [`Framework`] abstraction and the
//! [`SmartMemPipeline`] itself.

use crate::fusion::GroupDraft;
use crate::layout_select::SelectionLevel;
use crate::lte::LteResult;
use crate::streamline::StreamlinePass;

use crate::pass::{
    AssembleGroupsPass, CompileOutput, FusionPass, LayoutSelectPass, LtePass, PassManager, TunePass,
};
use crate::tune::{ExecConfig, GaTuner};
use smartmem_index::IndexMap;
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::{Graph, Layout, Op, OpId, OpOrigin, TensorId, UnaryKind};
use smartmem_sim::{DeviceConfig, LatencyClass};
use std::error::Error;
use std::fmt;

/// One external tensor read of a kernel group.
#[derive(Clone, Debug)]
pub struct EdgeRead {
    /// Tensor the member operator reads in the source graph (defines the
    /// declared coordinate space of [`EdgeRead::map`]).
    pub logical: TensorId,
    /// Materialized tensor physically holding the data (after LTE).
    pub source: TensorId,
    /// Composed pull-back map from `logical` coordinates to `source`
    /// coordinates (`None` = identity).
    pub map: Option<IndexMap>,
    /// The member operator performing the read.
    pub member: OpId,
    /// Operand position on the member.
    pub operand_idx: usize,
    /// Physical layout the read uses (set by layout selection).
    pub layout: Layout,
    /// Canonical (bucket-invariant) digest of the composed map for
    /// graphs with symbolic dimensions; `None` on static graphs. Group
    /// content hashing prefers this over the concrete map so
    /// structurally identical groups hash identically across buckets.
    pub canon: Option<u64>,
}

/// One fused kernel.
#[derive(Clone, Debug)]
pub struct KernelGroup {
    /// Anchor operator (defines the kernel's iteration space).
    pub anchor: OpId,
    /// All member operators (anchor first, epilogues after).
    pub members: Vec<OpId>,
    /// External reads.
    pub reads: Vec<EdgeRead>,
    /// Materialized output tensor.
    pub output: TensorId,
    /// Physical layout of the output.
    pub output_layout: Layout,
    /// Latency attribution bucket (Table 1: compute vs explicit vs
    /// implicit transformation).
    pub class: LatencyClass,
    /// Execution configuration (tiling, workgroup, unrolling).
    pub config: ExecConfig,
    /// Achieved fraction of peak compute throughput.
    pub utilization: f64,
    /// Number of extra layout copies of the output kept for consumers
    /// with conflicting reduction-dimension requirements (§4.6).
    pub extra_copies: usize,
}

/// Optimization statistics (Table 7's operator counts and §4.6's
/// redundant-copy data).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OptStats {
    /// Operators in the unoptimized source graph.
    pub source_ops: usize,
    /// Kernels after optimization (the paper's "#Operators with
    /// optimizations").
    pub kernel_count: usize,
    /// Layout-transformation operators eliminated by LTE.
    pub eliminated_ops: usize,
    /// Operators folded into other kernels by fusion.
    pub fused_ops: usize,
    /// Relayout operators inserted by the framework (implicit
    /// transformations; zero for SmartMem).
    pub implicit_inserted: usize,
    /// Tensors that needed redundant layout copies.
    pub redundant_tensors: usize,
    /// Largest single redundant copy in bytes.
    pub redundant_bytes_max: u64,
    /// Net operator-count reduction from the streamline pass family.
    pub streamline_removed_ops: usize,
    /// Explicit `Transpose` operators that streamlining cancelled,
    /// moved out of the live graph, or absorbed into reshapes. Can
    /// exceed `streamline_removed_ops`: an absorbed transpose becomes a
    /// reshape, removing a transpose without shrinking the graph.
    pub streamline_transposes_removed: usize,
}

/// How a framework's runtime consumes memory (drives the OOM behaviour
/// of Figs. 10–11).
#[derive(Clone, Copy, Debug)]
pub struct MemModel {
    /// Whether intermediate tensors are recycled through a memory pool
    /// (§4.6: SmartMem and TVM pool; naive runtimes keep every
    /// intermediate live).
    pub pooled: bool,
    /// Multiplier on activation memory for runtime workspaces/staging.
    pub workspace_factor: f64,
    /// Whether convolutions allocate an im2col workspace.
    pub im2col: bool,
    /// Multiplier on per-kernel dispatch overhead (NCNN batches Vulkan
    /// command buffers and pays far less per kernel than OpenCL
    /// runtimes).
    pub dispatch_scale: f64,
}

impl Default for MemModel {
    fn default() -> Self {
        MemModel { pooled: true, workspace_factor: 1.2, im2col: false, dispatch_scale: 1.0 }
    }
}

/// A fully optimized model ready for latency estimation.
#[derive(Clone, Debug)]
pub struct OptimizedGraph {
    /// The source graph (owned copy).
    pub graph: Graph,
    /// Kernels in execution (topological) order.
    pub groups: Vec<KernelGroup>,
    /// Optimization statistics.
    pub stats: OptStats,
    /// Runtime memory model.
    pub mem_model: MemModel,
}

impl Encode for EdgeRead {
    fn encode(&self, w: &mut Writer) {
        self.logical.encode(w);
        self.source.encode(w);
        self.map.encode(w);
        self.member.encode(w);
        self.operand_idx.encode(w);
        self.layout.encode(w);
        self.canon.encode(w);
    }
}

impl Decode for EdgeRead {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EdgeRead {
            logical: Decode::decode(r)?,
            source: Decode::decode(r)?,
            map: Decode::decode(r)?,
            member: Decode::decode(r)?,
            operand_idx: Decode::decode(r)?,
            layout: Decode::decode(r)?,
            canon: Decode::decode(r)?,
        })
    }
}

impl Encode for KernelGroup {
    fn encode(&self, w: &mut Writer) {
        self.anchor.encode(w);
        self.members.encode(w);
        self.reads.encode(w);
        self.output.encode(w);
        self.output_layout.encode(w);
        self.class.encode(w);
        self.config.encode(w);
        self.utilization.encode(w);
        self.extra_copies.encode(w);
    }
}

impl Decode for KernelGroup {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(KernelGroup {
            anchor: Decode::decode(r)?,
            members: Decode::decode(r)?,
            reads: Decode::decode(r)?,
            output: Decode::decode(r)?,
            output_layout: Decode::decode(r)?,
            class: Decode::decode(r)?,
            config: Decode::decode(r)?,
            utilization: Decode::decode(r)?,
            extra_copies: Decode::decode(r)?,
        })
    }
}

impl Encode for OptStats {
    fn encode(&self, w: &mut Writer) {
        self.source_ops.encode(w);
        self.kernel_count.encode(w);
        self.eliminated_ops.encode(w);
        self.fused_ops.encode(w);
        self.implicit_inserted.encode(w);
        self.redundant_tensors.encode(w);
        self.redundant_bytes_max.encode(w);
        self.streamline_removed_ops.encode(w);
        self.streamline_transposes_removed.encode(w);
    }
}

impl Decode for OptStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OptStats {
            source_ops: Decode::decode(r)?,
            kernel_count: Decode::decode(r)?,
            eliminated_ops: Decode::decode(r)?,
            fused_ops: Decode::decode(r)?,
            implicit_inserted: Decode::decode(r)?,
            redundant_tensors: Decode::decode(r)?,
            redundant_bytes_max: Decode::decode(r)?,
            streamline_removed_ops: Decode::decode(r)?,
            streamline_transposes_removed: Decode::decode(r)?,
        })
    }
}

impl Encode for MemModel {
    fn encode(&self, w: &mut Writer) {
        self.pooled.encode(w);
        self.workspace_factor.encode(w);
        self.im2col.encode(w);
        self.dispatch_scale.encode(w);
    }
}

impl Decode for MemModel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MemModel {
            pooled: Decode::decode(r)?,
            workspace_factor: Decode::decode(r)?,
            im2col: Decode::decode(r)?,
            dispatch_scale: Decode::decode(r)?,
        })
    }
}

impl Encode for OptimizedGraph {
    fn encode(&self, w: &mut Writer) {
        self.graph.encode(w);
        self.groups.encode(w);
        self.stats.encode(w);
        self.mem_model.encode(w);
    }
}

impl Decode for OptimizedGraph {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let graph = Graph::decode(r)?;
        let groups = Vec::<KernelGroup>::decode(r)?;
        let stats = OptStats::decode(r)?;
        let mem_model = MemModel::decode(r)?;
        // Kernel groups index into the decoded graph; wild references
        // or invalid layouts would panic downstream in estimation, so a
        // bad artifact must be rejected here (the cache falls back to a
        // cold compile).
        let ops = graph.op_count();
        let tensors = graph.tensors().len();
        let bad = |what: &str| Err(WireError::Invalid(format!("decoded artifact: {what}")));
        for g in &groups {
            if (g.anchor.0 as usize) >= ops || g.members.iter().any(|m| m.0 as usize >= ops) {
                return bad("group references unknown operator");
            }
            if (g.output.0 as usize) >= tensors {
                return bad("group output references unknown tensor");
            }
            let out_rank = graph.tensor(g.output).shape.rank();
            if g.output_layout.validate(out_rank).is_err() {
                return bad("invalid output layout");
            }
            for read in &g.reads {
                if (read.logical.0 as usize) >= tensors
                    || (read.source.0 as usize) >= tensors
                    || (read.member.0 as usize) >= ops
                {
                    return bad("read references unknown tensor/operator");
                }
                let rank = graph.tensor(read.source).shape.rank();
                if read.layout.validate(rank).is_err() {
                    return bad("invalid read layout");
                }
                // The estimator evaluates `map` at coordinates of the
                // logical tensor and addresses the source tensor with
                // the results — both eval and address assert their
                // coordinate ranks, so a rank-inconsistent map must be
                // rejected here, not panic there.
                if let Some(map) = &read.map {
                    if map.out_rank() != graph.tensor(read.logical).shape.rank()
                        || map.in_rank() != rank
                    {
                        return bad("read map rank mismatch");
                    }
                }
            }
        }
        Ok(OptimizedGraph { graph, groups, stats, mem_model })
    }
}

/// Error returned when a framework cannot execute a model (missing
/// operator support or insufficient device memory) — the "–" entries of
/// Tables 7–8 and the empty bars of Figs. 10–11.
#[derive(Clone, Debug)]
pub struct Unsupported {
    /// Framework name.
    pub framework: String,
    /// Human-readable reason.
    pub reason: String,
}

impl Unsupported {
    /// Creates an unsupported-model error.
    pub fn new(framework: impl Into<String>, reason: impl Into<String>) -> Self {
        Unsupported { framework: framework.into(), reason: reason.into() }
    }
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: model not supported ({})", self.framework, self.reason)
    }
}

impl Error for Unsupported {}

impl Encode for Unsupported {
    fn encode(&self, w: &mut Writer) {
        self.framework.encode(w);
        self.reason.encode(w);
    }
}

impl Decode for Unsupported {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Unsupported { framework: Decode::decode(r)?, reason: Decode::decode(r)? })
    }
}

/// A DNN execution framework: a named pass sequence that optimizes a
/// graph for a device, plus latency estimation on the shared simulator.
///
/// Implementors only provide [`Framework::name`] and
/// [`Framework::passes`]; optimization runs through the shared
/// [`PassManager`], so per-pass timing ([`Framework::optimize_timed`])
/// and the compilation cache work identically for every framework.
pub trait Framework: Send + Sync {
    /// Framework display name.
    fn name(&self) -> &str;

    /// The framework's declarative pass sequence.
    fn passes(&self) -> PassManager;

    /// Optimizes `graph` for `device`.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the framework cannot compile the
    /// model (operator support gaps).
    fn optimize(
        &self,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> Result<OptimizedGraph, Unsupported> {
        Ok(self.passes().run_on(graph, device)?.optimized)
    }

    /// Optimizes `graph`, additionally returning per-pass wall-clock
    /// timing and diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the framework cannot compile the
    /// model (operator support gaps).
    fn optimize_timed(
        &self,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> Result<CompileOutput, Unsupported> {
        self.passes().run_on(graph, device)
    }

    /// Optimizes and estimates, failing when the model does not fit
    /// device memory.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] for operator-support gaps or
    /// out-of-memory conditions.
    fn run(
        &self,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> Result<crate::estimate::ModelReport, Unsupported> {
        let optimized = self.optimize(graph, device)?;
        let report = optimized.estimate(device);
        // Roughly half of unified memory is usable for one app's tensors.
        let usable = (device.memory_bytes() as f64 * 0.5) as u64;
        if report.peak_memory_bytes > usable {
            return Err(Unsupported::new(
                self.name(),
                format!(
                    "insufficient memory: needs {:.1} MB, usable {:.1} MB",
                    report.peak_memory_bytes as f64 / 1e6,
                    usable as f64 / 1e6
                ),
            ));
        }
        Ok(report)
    }
}

/// Ablation switches of the SmartMem pipeline (Fig. 8's incremental
/// levels on top of the DNNFusion baseline).
#[derive(Clone, Copy, Debug)]
pub struct SmartMemConfig {
    /// Layout Transformation Elimination (§3.2.1).
    pub lte: bool,
    /// Index comprehension (strength reduction of eliminated maps).
    pub index_comprehension: bool,
    /// Reduction-dimension-based layout selection (§3.2.2).
    pub layout_selection: bool,
    /// 2.5D texture mapping (Fig. 5) and GA auto-tuning ("Other opt").
    pub texture_and_tuning: bool,
    /// Graph-level streamlining (transpose motion/absorption, CSE,
    /// constant folding) before kernel-level optimization.
    pub streamline: bool,
}

impl SmartMemConfig {
    /// The full SmartMem system.
    pub fn full() -> Self {
        SmartMemConfig {
            lte: true,
            index_comprehension: true,
            layout_selection: true,
            texture_and_tuning: true,
            streamline: true,
        }
    }

    /// DNNFusion-equivalent level (fusion only, no streamlining — the
    /// baseline comparison stays faithful).
    pub fn dnnfusion_level() -> Self {
        SmartMemConfig {
            lte: false,
            index_comprehension: false,
            layout_selection: false,
            texture_and_tuning: false,
            streamline: false,
        }
    }

    /// DNNFusion + LTE (Fig. 8's "LTE" bar).
    pub fn lte_level() -> Self {
        SmartMemConfig {
            lte: true,
            index_comprehension: true,
            layout_selection: false,
            texture_and_tuning: false,
            streamline: true,
        }
    }

    /// DNNFusion + LTE + layout selection (Fig. 8's "Layout Selecting").
    pub fn layout_level() -> Self {
        SmartMemConfig {
            lte: true,
            index_comprehension: true,
            layout_selection: true,
            texture_and_tuning: false,
            streamline: true,
        }
    }
}

impl Default for SmartMemConfig {
    fn default() -> Self {
        SmartMemConfig::full()
    }
}

/// The SmartMem optimizing pipeline (the paper's contribution).
#[derive(Clone, Debug, Default)]
pub struct SmartMemPipeline {
    config: SmartMemConfig,
    tuner: GaTuner,
}

impl SmartMemPipeline {
    /// Full-featured pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pipeline with explicit ablation switches.
    pub fn with_config(config: SmartMemConfig) -> Self {
        SmartMemPipeline { config, tuner: GaTuner::default() }
    }

    /// Active configuration.
    pub fn config(&self) -> SmartMemConfig {
        self.config
    }
}

impl Framework for SmartMemPipeline {
    fn name(&self) -> &str {
        "SmartMem"
    }

    fn passes(&self) -> PassManager {
        let cfg = self.config;
        let level = if !cfg.layout_selection {
            SelectionLevel::Default
        } else if cfg.texture_and_tuning {
            SelectionLevel::ReductionK2
        } else {
            SelectionLevel::ReductionK1
        };
        let mut pm = PassManager::new("SmartMem");
        if cfg.streamline {
            pm = pm.then(StreamlinePass);
        }
        pm.then(LtePass { enabled: cfg.lte, index_comprehension: cfg.index_comprehension })
            .then(FusionPass)
            .then(AssembleGroupsPass)
            .then(LayoutSelectPass { level })
            .then(TunePass { tuned: cfg.texture_and_tuning, tuner: self.tuner.clone() })
    }
}

/// Last-two iteration extents of a shape (1 when absent).
pub fn iteration_mn(dims: &[usize]) -> (usize, usize) {
    match dims.len() {
        0 => (1, 1),
        1 => (1, dims[0]),
        n => (dims[n - 2], dims[n - 1]),
    }
}

/// Latency class of a kernel anchored at `node` (Table 1 attribution).
pub fn group_class(op: &Op, origin: OpOrigin) -> LatencyClass {
    if op.is_layout_transform() {
        match origin {
            OpOrigin::Model => LatencyClass::ExplicitTransform,
            OpOrigin::Framework => LatencyClass::ImplicitTransform,
        }
    } else if matches!(op, Op::Unary { kind: UnaryKind::Identity }) && origin == OpOrigin::Framework
    {
        // Framework-inserted relayout copies.
        LatencyClass::ImplicitTransform
    } else {
        LatencyClass::Compute
    }
}

/// Builds [`KernelGroup`]s (with placeholder layouts/configs) from
/// fusion drafts, resolving reads through the elimination result.
///
/// Shared by SmartMem and the baseline pipelines.
pub fn assemble_groups(graph: &Graph, lte: &LteResult, drafts: &[GroupDraft]) -> Vec<KernelGroup> {
    drafts
        .iter()
        .map(|draft| {
            let internal: Vec<TensorId> =
                draft.members.iter().flat_map(|&m| graph.node(m).outputs.clone()).collect();
            let mut reads = Vec::new();
            for &member in &draft.members {
                let node = graph.node(member);
                for (operand_idx, &input) in node.inputs.iter().enumerate() {
                    let resolved = lte.resolve(input);
                    if internal.contains(&resolved.source) || internal.contains(&input) {
                        continue; // produced inside the kernel
                    }
                    let rank = graph.tensor(resolved.source).shape.rank();
                    reads.push(EdgeRead {
                        logical: input,
                        source: resolved.source,
                        map: resolved.map,
                        member,
                        operand_idx,
                        layout: Layout::row_major(rank),
                        canon: resolved.canon,
                    });
                }
            }
            let anchor_node = graph.node(draft.anchor);
            let output = draft.output(graph);
            let out_rank = graph.tensor(output).shape.rank();
            KernelGroup {
                anchor: draft.anchor,
                members: draft.members.clone(),
                reads,
                output,
                output_layout: Layout::row_major(out_rank),
                class: group_class(&anchor_node.op, anchor_node.origin),
                config: ExecConfig::default(),
                utilization: 0.4,
                extra_copies: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder};

    fn swinish_block() -> Graph {
        // A window-attention-like snippet with reshape/transpose chains.
        let mut b = GraphBuilder::new("block");
        let x = b.input("x", &[1, 64, 96], DType::F16);
        let wq = b.weight("wq", &[96, 96], DType::F16);
        let n = b.layer_norm(x, vec![2]);
        let q = b.matmul(n, wq);
        let r = b.reshape(q, &[1, 64, 3, 32]);
        let t = b.transpose(r, &[0, 2, 1, 3]);
        let r2 = b.reshape(t, &[3, 64, 32]);
        let att = b.matmul_t(r2, r2, false, true);
        let sm = b.softmax(att, 2);
        let out = b.matmul(sm, r2);
        b.output(out);
        b.finish()
    }

    #[test]
    fn pipeline_reduces_operator_count() {
        let g = swinish_block();
        let device = DeviceConfig::snapdragon_8gen2();
        let full = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        let base = SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level())
            .optimize(&g, &device)
            .unwrap();
        assert!(full.stats.kernel_count < base.stats.kernel_count);
        assert_eq!(full.stats.eliminated_ops, 3); // 2 reshapes + 1 transpose
        assert_eq!(full.stats.source_ops, g.op_count());
    }

    #[test]
    fn reads_resolve_through_eliminated_chain() {
        let g = swinish_block();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        // The attention matmul reads the (eliminated) reshaped Q through a map.
        let mapped_reads: usize =
            opt.groups.iter().flat_map(|gr| gr.reads.iter()).filter(|r| r.map.is_some()).count();
        assert!(mapped_reads >= 2, "expected mapped reads, found {mapped_reads}");
    }

    #[test]
    fn group_classes_for_transforms() {
        assert_eq!(
            group_class(&Op::Transpose { perm: vec![1, 0] }, OpOrigin::Model),
            LatencyClass::ExplicitTransform
        );
        assert_eq!(
            group_class(&Op::Reshape { shape: vec![4] }, OpOrigin::Framework),
            LatencyClass::ImplicitTransform
        );
        assert_eq!(
            group_class(&Op::Unary { kind: UnaryKind::Identity }, OpOrigin::Framework),
            LatencyClass::ImplicitTransform
        );
        assert_eq!(
            group_class(&Op::MatMul { trans_a: false, trans_b: false }, OpOrigin::Model),
            LatencyClass::Compute
        );
    }

    #[test]
    fn tuning_improves_utilization() {
        let g = swinish_block();
        let device = DeviceConfig::snapdragon_8gen2();
        let full = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        let untuned = SmartMemPipeline::with_config(SmartMemConfig::layout_level())
            .optimize(&g, &device)
            .unwrap();
        let avg = |o: &OptimizedGraph| {
            o.groups.iter().map(|g| g.utilization).sum::<f64>() / o.groups.len() as f64
        };
        assert!(avg(&full) > avg(&untuned));
    }

    #[test]
    fn unsupported_error_renders() {
        let e = Unsupported::new("NCNN", "no transformer ops");
        assert!(e.to_string().contains("NCNN"));
    }
}
