//! The pass-manager compilation architecture.
//!
//! Every framework in this repository — SmartMem itself and the six
//! baselines — is expressed as a *declarative pass sequence* executed by
//! one [`PassManager`] (the `transform.Sequential` idiom of TVM's
//! relay/relax pass infrastructure). A [`Pass`] is a named rewrite step
//! over a shared [`CompileCtx`] that carries the graph, the device
//! configuration, and all intermediate optimizer state (elimination
//! results, fusion drafts, kernel groups, layout decisions). The
//! manager records per-pass wall-clock timing and an [`OptStats`]
//! snapshot after every pass, plus structured [`Diagnostic`]s emitted by
//! the passes themselves.
//!
//! The five core passes implemented here ([`LtePass`], [`FusionPass`],
//! [`AssembleGroupsPass`], [`LayoutSelectPass`], [`TunePass`]) cover the
//! SmartMem pipeline; `smartmem-baselines` contributes the
//! baseline-specific passes (relayout insertion, policy fusion, uniform
//! layouts, utilization finalization) over the same trait.

use crate::fusion::{fuse, GroupDraft};
use crate::layout_select::{select_layouts, RedundancyStats, SelectionLevel};
use crate::lte::{eliminate, LteResult};
use crate::pipeline::{
    assemble_groups, iteration_mn, KernelGroup, MemModel, OptStats, OptimizedGraph, Unsupported,
};
use crate::tune::{utilization, ExecConfig, GaTuner};
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Shared state threaded through a pass sequence.
///
/// Before the pass-manager refactor this state lived in the private
/// function arguments of `SmartMemPipeline::optimize` and each
/// baseline's ad-hoc variant; making it explicit lets passes compose
/// freely and lets the manager snapshot [`OptStats`] between passes.
#[derive(Clone, Debug)]
pub struct CompileCtx {
    /// Display name of the framework being compiled (used in
    /// [`Unsupported`] errors and diagnostics).
    pub framework: String,
    /// The graph under compilation. Graph-rewriting passes (e.g. the
    /// baselines' relayout insertion) replace it wholesale.
    pub graph: Graph,
    /// Target device.
    pub device: DeviceConfig,
    /// Operator count of the *original* source graph (before any
    /// framework-inserted operators).
    pub source_ops: usize,
    /// Elimination result, set by [`LtePass`].
    pub lte: Option<LteResult>,
    /// Fusion drafts, set by [`FusionPass`] or a baseline fusion pass.
    pub drafts: Vec<GroupDraft>,
    /// Kernel groups, set by [`AssembleGroupsPass`] and refined by
    /// layout/tuning passes.
    pub groups: Vec<KernelGroup>,
    /// Redundant-copy statistics from layout selection (§4.6).
    pub redundancy: RedundancyStats,
    /// Relayout operators inserted by the framework (implicit
    /// transformations; zero for SmartMem).
    pub implicit_inserted: usize,
    /// Runtime memory model of the framework.
    pub mem_model: MemModel,
    /// Structured diagnostics accumulated by the passes.
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileCtx {
    /// Fresh context for compiling `graph` on `device`.
    pub fn new(framework: impl Into<String>, graph: &Graph, device: &DeviceConfig) -> Self {
        CompileCtx {
            framework: framework.into(),
            graph: graph.clone(),
            device: device.clone(),
            source_ops: graph.op_count(),
            lte: None,
            drafts: Vec::new(),
            groups: Vec::new(),
            redundancy: RedundancyStats::default(),
            implicit_inserted: 0,
            mem_model: MemModel::default(),
            diagnostics: Vec::new(),
        }
    }

    /// Current optimization statistics, derivable at any point of the
    /// sequence (the manager snapshots this after every pass).
    pub fn stats(&self) -> OptStats {
        OptStats {
            source_ops: self.source_ops,
            kernel_count: self.groups.len(),
            eliminated_ops: self.lte.as_ref().map_or(0, |l| l.eliminated.len()),
            fused_ops: self.groups.iter().map(|g| g.members.len() - 1).sum(),
            implicit_inserted: self.implicit_inserted,
            redundant_tensors: self.redundancy.tensors,
            redundant_bytes_max: self.redundancy.max_bytes,
        }
    }

    /// Records a structured diagnostic attributed to `pass`.
    pub fn note(&mut self, pass: &str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic { pass: pass.to_string(), message: message.into() });
    }

    /// The elimination result, which every group-building pass depends
    /// on.
    ///
    /// # Panics
    ///
    /// Panics when no [`LtePass`] ran earlier in the sequence — a pass
    /// ordering bug in the pipeline definition, not a property of the
    /// model being compiled.
    pub fn expect_lte(&self, requester: &str) -> &LteResult {
        self.lte
            .as_ref()
            .unwrap_or_else(|| panic!("{requester} requires an LtePass earlier in the sequence"))
    }
}

/// One structured diagnostic emitted during compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the emitting pass.
    pub pass: String,
    /// Human-readable message.
    pub message: String,
}

/// One step of a compilation pipeline.
pub trait Pass: Send + Sync {
    /// Stable pass name (shown in timings and diagnostics).
    fn name(&self) -> &'static str;

    /// Configuration fingerprint: two passes with equal `name()` and
    /// equal `params()` must behave identically. Feeds the pass-sequence
    /// id used as a compilation-cache key component.
    fn params(&self) -> String {
        String::new()
    }

    /// Executes the pass over the shared context.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the framework cannot compile the
    /// model (operator-support gaps).
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported>;
}

/// Wall-clock timing and statistics snapshot of one executed pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// Pass name.
    pub pass: String,
    /// Wall-clock execution time of the pass.
    pub duration: Duration,
    /// [`OptStats`] snapshot *after* the pass ran (diff two consecutive
    /// snapshots for the per-pass delta).
    pub stats: OptStats,
}

/// Everything a pass-manager compilation produces.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// The optimized model.
    pub optimized: OptimizedGraph,
    /// Per-pass wall-clock timing, in execution order.
    pub timings: Vec<PassTiming>,
    /// Structured diagnostics from the passes.
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileOutput {
    /// Total wall-clock compilation time (sum over passes).
    pub fn total_duration(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }
}

impl Encode for Diagnostic {
    fn encode(&self, w: &mut Writer) {
        self.pass.encode(w);
        self.message.encode(w);
    }
}

impl Decode for Diagnostic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Diagnostic { pass: Decode::decode(r)?, message: Decode::decode(r)? })
    }
}

impl Encode for PassTiming {
    fn encode(&self, w: &mut Writer) {
        self.pass.encode(w);
        // Durations persist as nanoseconds; a pass that somehow ran for
        // 584+ years saturates.
        w.put_u64(u64::try_from(self.duration.as_nanos()).unwrap_or(u64::MAX));
        self.stats.encode(w);
    }
}

impl Decode for PassTiming {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PassTiming {
            pass: Decode::decode(r)?,
            duration: Duration::from_nanos(r.get_u64()?),
            stats: Decode::decode(r)?,
        })
    }
}

impl Encode for CompileOutput {
    fn encode(&self, w: &mut Writer) {
        self.optimized.encode(w);
        self.timings.encode(w);
        self.diagnostics.encode(w);
    }
}

impl Decode for CompileOutput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CompileOutput {
            optimized: Decode::decode(r)?,
            timings: Decode::decode(r)?,
            diagnostics: Decode::decode(r)?,
        })
    }
}

/// Executes a declarative pass sequence, timing every pass and
/// snapshotting [`OptStats`] between passes.
pub struct PassManager {
    framework: String,
    mem_model: MemModel,
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Empty pipeline for `framework`.
    pub fn new(framework: impl Into<String>) -> Self {
        PassManager {
            framework: framework.into(),
            mem_model: MemModel::default(),
            passes: Vec::new(),
        }
    }

    /// Renames the pipeline (used by frameworks that reuse another
    /// framework's sequence, e.g. DNNFusion reusing SmartMem's with the
    /// SmartMem-specific passes disabled).
    #[must_use]
    pub fn named(mut self, framework: impl Into<String>) -> Self {
        self.framework = framework.into();
        self
    }

    /// Sets the runtime memory model recorded in the output.
    #[must_use]
    pub fn with_mem_model(mut self, mem_model: MemModel) -> Self {
        self.mem_model = mem_model;
        self
    }

    /// Appends a pass to the sequence.
    #[must_use]
    pub fn then(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Framework display name.
    pub fn framework(&self) -> &str {
        &self.framework
    }

    /// Pass names in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Content id of the sequence: framework name plus every pass's
    /// name and configuration. Two managers with equal ids produce
    /// identical results for identical inputs, which makes the id a
    /// valid compilation-cache key component.
    pub fn sequence_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.framework.hash(&mut h);
        for p in &self.passes {
            p.name().hash(&mut h);
            p.params().hash(&mut h);
        }
        h.finish()
    }

    /// Runs the sequence over `graph` for `device`.
    ///
    /// # Errors
    ///
    /// Returns the first [`Unsupported`] raised by a pass.
    pub fn run_on(
        &self,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> Result<CompileOutput, Unsupported> {
        let mut ctx = CompileCtx::new(self.framework.clone(), graph, device);
        ctx.mem_model = self.mem_model;
        let mut timings = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(&mut ctx)?;
            timings.push(PassTiming {
                pass: pass.name().to_string(),
                duration: start.elapsed(),
                stats: ctx.stats(),
            });
        }
        let stats = ctx.stats();
        Ok(CompileOutput {
            optimized: OptimizedGraph {
                graph: ctx.graph,
                groups: ctx.groups,
                stats,
                mem_model: ctx.mem_model,
            },
            timings,
            diagnostics: ctx.diagnostics,
        })
    }
}

// ---------------------------------------------------------------------
// Core passes (the SmartMem sequence; baselines add their own).
// ---------------------------------------------------------------------

/// Layout Transformation Elimination (§3.2.1). With `enabled = false`
/// the pass still runs — producing the identity elimination result the
/// downstream passes consume — so baselines share the same sequence
/// shape.
#[derive(Clone, Copy, Debug)]
pub struct LtePass {
    /// Eliminate transformation operators into index maps.
    pub enabled: bool,
    /// Strength-reduce the composed maps (index comprehension).
    pub index_comprehension: bool,
}

impl LtePass {
    /// The no-elimination variant used by every baseline.
    pub fn disabled() -> Self {
        LtePass { enabled: false, index_comprehension: false }
    }
}

impl Pass for LtePass {
    fn name(&self) -> &'static str {
        "lte"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let lte = eliminate(&ctx.graph, self.enabled, self.index_comprehension);
        if self.enabled {
            ctx.note(
                self.name(),
                format!(
                    "eliminated {} of {} operators",
                    lte.eliminated.len(),
                    ctx.graph.op_count()
                ),
            );
        }
        ctx.lte = Some(lte);
        Ok(())
    }
}

/// DNNFusion-style classification-based fusion over the elimination
/// result (SmartMem and DNNFusion; baselines use `PolicyFusionPass`
/// from `smartmem-baselines`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FusionPass;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let drafts = fuse(&ctx.graph, ctx.expect_lte(self.name()), true);
        ctx.note(
            self.name(),
            format!(
                "{} kernels from {} kept operators",
                drafts.len(),
                ctx.expect_lte(self.name()).kept.len()
            ),
        );
        ctx.drafts = drafts;
        Ok(())
    }
}

/// Materializes [`KernelGroup`]s from the fusion drafts, resolving
/// external reads through the elimination result.
#[derive(Clone, Copy, Debug, Default)]
pub struct AssembleGroupsPass;

impl Pass for AssembleGroupsPass {
    fn name(&self) -> &'static str {
        "assemble-groups"
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        ctx.groups = assemble_groups(&ctx.graph, ctx.expect_lte(self.name()), &ctx.drafts);
        Ok(())
    }
}

/// Reduction-dimension-based layout selection (§3.2.2) with
/// redundant-copy accounting (§4.6).
#[derive(Clone, Copy, Debug)]
pub struct LayoutSelectPass {
    /// Selection aggressiveness (framework default / k=1 / full k=2).
    pub level: SelectionLevel,
}

impl Pass for LayoutSelectPass {
    fn name(&self) -> &'static str {
        "layout-select"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        ctx.redundancy = select_layouts(&ctx.graph, &mut ctx.groups, &ctx.device, self.level);
        if ctx.redundancy.tensors > 0 {
            let (tensors, max_bytes) = (ctx.redundancy.tensors, ctx.redundancy.max_bytes);
            ctx.note(
                self.name(),
                format!("{tensors} tensors need redundant copies (max {max_bytes} bytes)"),
            );
        }
        Ok(())
    }
}

/// Execution-configuration tuning: the GA when `tuned`, detuned
/// DNNFusion-era defaults otherwise.
#[derive(Clone, Debug)]
pub struct TunePass {
    /// Run the GA (otherwise untuned defaults with the DNNFusion-era
    /// quality penalty).
    pub tuned: bool,
    /// The tuner (deterministic per seed).
    pub tuner: GaTuner,
}

impl Pass for TunePass {
    fn name(&self) -> &'static str {
        "tune"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let graph = &ctx.graph;
        for g in &mut ctx.groups {
            let node = graph.node(g.anchor);
            let out_shape = &graph.tensor(node.outputs[0]).shape;
            let (m, n) = iteration_mn(out_shape.dims());
            if self.tuned {
                let (config, util) = self.tuner.tune(&node.op, m, n);
                g.config = config;
                g.utilization = util;
            } else {
                g.config = ExecConfig::default();
                // Untuned (DNNFusion-era) kernels; its transform kernels
                // in particular were not layout-aware.
                let transform_penalty = if node.op.is_layout_transform() { 0.6 } else { 1.0 };
                g.utilization = utilization(&node.op, m, n, &g.config) * 0.7 * transform_penalty;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Framework, SmartMemPipeline};
    use smartmem_ir::{DType, GraphBuilder};

    fn toy() -> Graph {
        let mut b = GraphBuilder::new("toy");
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x, w);
        let t = b.transpose(mm, &[0, 2, 1]);
        let out = b.softmax(t, 2);
        b.output(out);
        b.finish()
    }

    #[test]
    fn manager_times_every_pass() {
        let device = DeviceConfig::snapdragon_8gen2();
        let out = SmartMemPipeline::new().passes().run_on(&toy(), &device).unwrap();
        assert_eq!(out.timings.len(), 5);
        let names: Vec<&str> = out.timings.iter().map(|t| t.pass.as_str()).collect();
        assert_eq!(names, vec!["lte", "fusion", "assemble-groups", "layout-select", "tune"]);
        // Stats snapshots are monotone in information: groups appear at
        // assemble-groups and stay.
        assert_eq!(out.timings[0].stats.kernel_count, 0);
        assert!(out.timings[2].stats.kernel_count > 0);
        assert_eq!(out.timings[4].stats, out.optimized.stats);
    }

    #[test]
    fn diagnostics_record_elimination() {
        let device = DeviceConfig::snapdragon_8gen2();
        let out = SmartMemPipeline::new().passes().run_on(&toy(), &device).unwrap();
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.pass == "lte" && d.message.contains("eliminated")));
    }

    #[test]
    fn sequence_ids_separate_configs() {
        use crate::pipeline::SmartMemConfig;
        let full = SmartMemPipeline::new().passes().sequence_id();
        let base =
            SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level()).passes().sequence_id();
        let full2 = SmartMemPipeline::new().passes().sequence_id();
        assert_ne!(full, base);
        assert_eq!(full, full2);
    }

    #[test]
    fn manager_matches_monolithic_result() {
        // The pass sequence must reproduce exactly what the former
        // monolithic SmartMemPipeline::optimize computed.
        let device = DeviceConfig::snapdragon_8gen2();
        let g = toy();
        let opt = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        let out = SmartMemPipeline::new().passes().run_on(&g, &device).unwrap();
        assert_eq!(opt.stats, out.optimized.stats);
        assert_eq!(opt.groups.len(), out.optimized.groups.len());
    }

    #[test]
    #[should_panic(expected = "requires an LtePass")]
    fn missing_lte_dependency_panics() {
        let device = DeviceConfig::snapdragon_8gen2();
        let _ = PassManager::new("broken").then(FusionPass).run_on(&toy(), &device);
    }
}
