//! The pass-manager compilation architecture.
//!
//! Every framework in this repository — SmartMem itself and the six
//! baselines — is expressed as a *declarative pass sequence* executed by
//! one [`PassManager`] (the `transform.Sequential` idiom of TVM's
//! relay/relax pass infrastructure). A [`Pass`] is a named rewrite step
//! over a shared [`CompileCtx`] that carries the graph, the device
//! configuration, and all intermediate optimizer state (elimination
//! results, fusion drafts, kernel groups, layout decisions). The
//! manager records per-pass wall-clock timing and an [`OptStats`]
//! snapshot after every pass, plus structured [`Diagnostic`]s emitted by
//! the passes themselves.
//!
//! The five core passes implemented here ([`LtePass`], [`FusionPass`],
//! [`AssembleGroupsPass`], [`LayoutSelectPass`], [`TunePass`]) cover the
//! SmartMem pipeline; `smartmem-baselines` contributes the
//! baseline-specific passes (relayout insertion, policy fusion, uniform
//! layouts, utilization finalization) over the same trait.

use crate::fusion::{fuse, GroupDraft};
use crate::groupcache::{group_content_hash, GroupCache, GroupDecisions};
use crate::layout_select::{
    apply_group_layouts, group_layout_context, plan_layouts, LayoutPlan, RedundancyStats,
    SelectionLevel,
};
use crate::lte::{eliminate, LteResult};
use crate::pipeline::{
    assemble_groups, iteration_mn, KernelGroup, MemModel, OptStats, OptimizedGraph, Unsupported,
};
use crate::session::device_fingerprint;
use crate::tune::{utilization, ExecConfig, GaTuner};
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::{Graph, Op};
use smartmem_sim::DeviceConfig;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared state threaded through a pass sequence.
///
/// Before the pass-manager refactor this state lived in the private
/// function arguments of `SmartMemPipeline::optimize` and each
/// baseline's ad-hoc variant; making it explicit lets passes compose
/// freely and lets the manager snapshot [`OptStats`] between passes.
#[derive(Clone, Debug)]
pub struct CompileCtx {
    /// Display name of the framework being compiled (used in
    /// [`Unsupported`] errors and diagnostics).
    pub framework: String,
    /// The graph under compilation. Graph-rewriting passes (e.g. the
    /// baselines' relayout insertion) replace it wholesale.
    pub graph: Graph,
    /// Target device.
    pub device: DeviceConfig,
    /// Operator count of the *original* source graph (before any
    /// framework-inserted operators).
    pub source_ops: usize,
    /// Elimination result, set by [`LtePass`].
    pub lte: Option<LteResult>,
    /// Fusion drafts, set by [`FusionPass`] or a baseline fusion pass.
    pub drafts: Vec<GroupDraft>,
    /// Kernel groups, set by [`AssembleGroupsPass`] and refined by
    /// layout/tuning passes.
    pub groups: Vec<KernelGroup>,
    /// Redundant-copy statistics from layout selection (§4.6).
    pub redundancy: RedundancyStats,
    /// Relayout operators inserted by the framework (implicit
    /// transformations; zero for SmartMem).
    pub implicit_inserted: usize,
    /// Net operator-count reduction from streamline sweeps (graph-level
    /// rewrites before kernel-level optimization).
    pub streamline_removed_ops: usize,
    /// Explicit `Transpose` operators that streamline sweeps cancelled,
    /// dropped, or absorbed into reshapes.
    pub streamline_removed_transposes: usize,
    /// Runtime memory model of the framework.
    pub mem_model: MemModel,
    /// Structured diagnostics accumulated by the passes.
    pub diagnostics: Vec<Diagnostic>,
    /// Global layout plan, staged by [`LayoutSelectPass`]'s
    /// [`GroupRefine::group_context`] and consumed by its
    /// [`GroupRefine::refine`].
    pub(crate) layout_plan: Option<LayoutPlan>,
}

impl CompileCtx {
    /// Fresh context for compiling `graph` on `device`.
    pub fn new(framework: impl Into<String>, graph: &Graph, device: &DeviceConfig) -> Self {
        CompileCtx {
            framework: framework.into(),
            graph: graph.clone(),
            device: device.clone(),
            source_ops: graph.op_count(),
            lte: None,
            drafts: Vec::new(),
            groups: Vec::new(),
            redundancy: RedundancyStats::default(),
            implicit_inserted: 0,
            streamline_removed_ops: 0,
            streamline_removed_transposes: 0,
            mem_model: MemModel::default(),
            diagnostics: Vec::new(),
            layout_plan: None,
        }
    }

    /// Current optimization statistics, derivable at any point of the
    /// sequence (the manager snapshots this after every pass).
    pub fn stats(&self) -> OptStats {
        OptStats {
            source_ops: self.source_ops,
            kernel_count: self.groups.len(),
            eliminated_ops: self.lte.as_ref().map_or(0, |l| l.eliminated.len()),
            fused_ops: self.groups.iter().map(|g| g.members.len() - 1).sum(),
            implicit_inserted: self.implicit_inserted,
            redundant_tensors: self.redundancy.tensors,
            redundant_bytes_max: self.redundancy.max_bytes,
            streamline_removed_ops: self.streamline_removed_ops,
            streamline_transposes_removed: self.streamline_removed_transposes,
        }
    }

    /// Records a structured diagnostic attributed to `pass`.
    pub fn note(&mut self, pass: &str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic { pass: pass.to_string(), message: message.into() });
    }

    /// The elimination result, which every group-building pass depends
    /// on.
    ///
    /// # Panics
    ///
    /// Panics when no [`LtePass`] ran earlier in the sequence — a pass
    /// ordering bug in the pipeline definition, not a property of the
    /// model being compiled.
    pub fn expect_lte(&self, requester: &str) -> &LteResult {
        self.lte
            .as_ref()
            .unwrap_or_else(|| panic!("{requester} requires an LtePass earlier in the sequence"))
    }
}

/// One structured diagnostic emitted during compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the emitting pass.
    pub pass: String,
    /// Human-readable message.
    pub message: String,
}

/// One step of a compilation pipeline.
pub trait Pass: Send + Sync {
    /// Stable pass name (shown in timings and diagnostics).
    fn name(&self) -> &'static str;

    /// Configuration fingerprint: two passes with equal `name()` and
    /// equal `params()` must behave identically. Feeds the pass-sequence
    /// id used as a compilation-cache key component.
    fn params(&self) -> String {
        String::new()
    }

    /// Executes the pass over the shared context.
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the framework cannot compile the
    /// model (operator-support gaps).
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported>;

    /// The pass's per-group refinement view, when it has one.
    ///
    /// A pass that works group-by-group (layout selection, tuning)
    /// returns `Some(self)` so [`PassManager::run_incremental`] can
    /// replay cached decisions for unchanged groups and re-run the pass
    /// only on the groups a model edit actually touched. Graph-rewriting
    /// passes keep the default `None`, which makes the manager fall back
    /// to a full [`PassManager::run_on`].
    fn as_group_refine(&self) -> Option<&dyn GroupRefine> {
        None
    }
}

/// Per-kernel-group refinement interface of a [`Pass`].
///
/// The contract that makes incremental compilation sound:
///
/// 1. `refine(ctx, which)` must write **only** the decision fields of
///    the groups at `which` (layouts, config, utilization, copy
///    counts — exactly what [`GroupDecisions`] captures), and those
///    decisions may depend only on the group's own content, the device,
///    the pass configuration, and global state summarized by
///    `group_context`.
/// 2. `group_context` returns one digest per group covering **all**
///    cross-group state the pass folds into that group's decisions. Two
///    compilations agreeing on (group content hash, device, sequence
///    id, context digest) must produce identical decisions for the
///    group.
/// 3. The pass's [`Pass::run`] must be equivalent to
///    `group_context` + `refine` over all groups — the provided
///    implementations delegate exactly that way, so the full and
///    incremental paths cannot drift apart.
pub trait GroupRefine {
    /// Digests of the global context each group's decisions depend on
    /// (parallel to `ctx.groups`). Also the place to stage whole-model
    /// state for `refine` (e.g. the layout plan) and to emit
    /// diagnostics that describe global properties, so hit-heavy
    /// incremental compiles still report them.
    fn group_context(&self, ctx: &mut CompileCtx) -> Vec<u64>;

    /// Refines the groups at indices `which` (into `ctx.groups`).
    ///
    /// # Errors
    ///
    /// Returns [`Unsupported`] when the framework cannot compile the
    /// model.
    fn refine(&self, ctx: &mut CompileCtx, which: &[usize]) -> Result<(), Unsupported>;
}

/// Wall-clock timing and statistics snapshot of one executed pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// Pass name.
    pub pass: String,
    /// Wall-clock execution time of the pass.
    pub duration: Duration,
    /// [`OptStats`] snapshot *after* the pass ran (diff two consecutive
    /// snapshots for the per-pass delta).
    pub stats: OptStats,
}

/// Everything a pass-manager compilation produces.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// The optimized model.
    pub optimized: OptimizedGraph,
    /// Per-pass wall-clock timing, in execution order.
    pub timings: Vec<PassTiming>,
    /// Structured diagnostics from the passes.
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileOutput {
    /// Total wall-clock compilation time (sum over passes).
    pub fn total_duration(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }
}

impl Encode for Diagnostic {
    fn encode(&self, w: &mut Writer) {
        self.pass.encode(w);
        self.message.encode(w);
    }
}

impl Decode for Diagnostic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Diagnostic { pass: Decode::decode(r)?, message: Decode::decode(r)? })
    }
}

impl Encode for PassTiming {
    fn encode(&self, w: &mut Writer) {
        self.pass.encode(w);
        // Durations persist as nanoseconds; a pass that somehow ran for
        // 584+ years saturates.
        w.put_u64(u64::try_from(self.duration.as_nanos()).unwrap_or(u64::MAX));
        self.stats.encode(w);
    }
}

impl Decode for PassTiming {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PassTiming {
            pass: Decode::decode(r)?,
            duration: Duration::from_nanos(r.get_u64()?),
            stats: Decode::decode(r)?,
        })
    }
}

impl Encode for CompileOutput {
    fn encode(&self, w: &mut Writer) {
        self.optimized.encode(w);
        self.timings.encode(w);
        self.diagnostics.encode(w);
    }
}

impl Decode for CompileOutput {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CompileOutput {
            optimized: Decode::decode(r)?,
            timings: Decode::decode(r)?,
            diagnostics: Decode::decode(r)?,
        })
    }
}

/// Executes a declarative pass sequence, timing every pass and
/// snapshotting [`OptStats`] between passes.
pub struct PassManager {
    framework: String,
    mem_model: MemModel,
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Empty pipeline for `framework`.
    pub fn new(framework: impl Into<String>) -> Self {
        PassManager {
            framework: framework.into(),
            mem_model: MemModel::default(),
            passes: Vec::new(),
        }
    }

    /// Renames the pipeline (used by frameworks that reuse another
    /// framework's sequence, e.g. DNNFusion reusing SmartMem's with the
    /// SmartMem-specific passes disabled).
    #[must_use]
    pub fn named(mut self, framework: impl Into<String>) -> Self {
        self.framework = framework.into();
        self
    }

    /// Sets the runtime memory model recorded in the output.
    #[must_use]
    pub fn with_mem_model(mut self, mem_model: MemModel) -> Self {
        self.mem_model = mem_model;
        self
    }

    /// Appends a pass to the sequence.
    #[must_use]
    pub fn then(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Framework display name.
    pub fn framework(&self) -> &str {
        &self.framework
    }

    /// Pass names in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Content id of the sequence: framework name plus every pass's
    /// name and configuration. Two managers with equal ids produce
    /// identical results for identical inputs, which makes the id a
    /// valid compilation-cache key component.
    pub fn sequence_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.framework.hash(&mut h);
        for p in &self.passes {
            p.name().hash(&mut h);
            p.params().hash(&mut h);
        }
        h.finish()
    }

    /// Runs the sequence over `graph` for `device`.
    ///
    /// # Errors
    ///
    /// Returns the first [`Unsupported`] raised by a pass.
    pub fn run_on(
        &self,
        graph: &Graph,
        device: &DeviceConfig,
    ) -> Result<CompileOutput, Unsupported> {
        let mut ctx = CompileCtx::new(self.framework.clone(), graph, device);
        ctx.mem_model = self.mem_model;
        let mut timings = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(&mut ctx)?;
            timings.push(PassTiming {
                pass: pass.name().to_string(),
                duration: start.elapsed(),
                stats: ctx.stats(),
            });
        }
        let stats = ctx.stats();
        Ok(CompileOutput {
            optimized: OptimizedGraph {
                graph: ctx.graph,
                groups: ctx.groups,
                stats,
                mem_model: ctx.mem_model,
            },
            timings,
            diagnostics: ctx.diagnostics,
        })
    }

    /// Runs the sequence with kernel-group-granular reuse of refinement
    /// decisions.
    ///
    /// The passes up to the first [`GroupRefine`]-capable pass run in
    /// full (they are the cheap, structural part of the pipeline:
    /// elimination, fusion, group assembly). For the refinement suffix
    /// — layout selection and GA tuning, which dominate compile time —
    /// each group is fingerprinted by its content hash combined with
    /// the device fingerprint, the sequence id, and the per-pass
    /// context digests; groups whose fingerprints are in `cache` get
    /// their cached [`GroupDecisions`] replayed, and only the rest are
    /// refined (and their fresh decisions cached). Editing one layer of
    /// a model therefore re-optimizes only the touched groups.
    ///
    /// Sequences whose refinable passes do not form a suffix (every
    /// baseline ends with uniform-layout / utilization passes) fall
    /// back to a plain [`PassManager::run_on`]; the result is identical
    /// either way — see the `GroupRefine` contract.
    ///
    /// # Errors
    ///
    /// Returns the first [`Unsupported`] raised by a pass.
    pub fn run_incremental(
        &self,
        graph: &Graph,
        device: &DeviceConfig,
        cache: &GroupCache,
    ) -> Result<CompileOutput, Unsupported> {
        let Some(first) = self.passes.iter().position(|p| p.as_group_refine().is_some()) else {
            return self.run_on(graph, device);
        };
        if self.passes[first..].iter().any(|p| p.as_group_refine().is_none()) {
            return self.run_on(graph, device);
        }
        let mut ctx = CompileCtx::new(self.framework.clone(), graph, device);
        ctx.mem_model = self.mem_model;
        let mut timings = Vec::with_capacity(self.passes.len());
        for pass in &self.passes[..first] {
            let start = Instant::now();
            pass.run(&mut ctx)?;
            timings.push(PassTiming {
                pass: pass.name().to_string(),
                duration: start.elapsed(),
                stats: ctx.stats(),
            });
        }

        // Per-group fingerprints: content ⊕ device ⊕ sequence ⊕ the
        // context digest of every refinement pass.
        let refiners = &self.passes[first..];
        let device_fp = device_fingerprint(&ctx.device);
        let seq = self.sequence_id();
        let mut fps: Vec<DefaultHasher> = ctx
            .groups
            .iter()
            .map(|g| {
                let mut h = DefaultHasher::new();
                group_content_hash(&ctx.graph, g).hash(&mut h);
                device_fp.hash(&mut h);
                seq.hash(&mut h);
                h
            })
            .collect();
        let mut context_time = vec![Duration::ZERO; refiners.len()];
        for (k, pass) in refiners.iter().enumerate() {
            let start = Instant::now();
            let digests = pass.as_group_refine().expect("suffix checked").group_context(&mut ctx);
            context_time[k] = start.elapsed();
            debug_assert_eq!(digests.len(), fps.len(), "one context digest per group");
            for (h, d) in fps.iter_mut().zip(digests) {
                d.hash(h);
            }
        }
        let fps: Vec<u64> = fps.into_iter().map(|h| h.finish()).collect();

        // Replay cached decisions; collect the groups that must be
        // refined cold. An unusable cached entry (fingerprint collision)
        // is a miss.
        let mut missed = Vec::new();
        let mut hit = 0usize;
        for (i, fp) in fps.iter().enumerate() {
            match cache.lookup(*fp) {
                Some(d) if d.apply(&ctx.graph, &mut ctx.groups[i]) => hit += 1,
                _ => missed.push(i),
            }
        }

        // Refine the misses with the original pass order and record one
        // timing entry per refinement pass, context time included.
        for (k, pass) in refiners.iter().enumerate() {
            let start = Instant::now();
            pass.as_group_refine().expect("suffix checked").refine(&mut ctx, &missed)?;
            timings.push(PassTiming {
                pass: pass.name().to_string(),
                duration: context_time[k] + start.elapsed(),
                stats: ctx.stats(),
            });
        }
        for &i in &missed {
            cache.insert(fps[i], GroupDecisions::capture(&ctx.groups[i]));
        }
        cache.count(hit, missed.len());

        let stats = ctx.stats();
        Ok(CompileOutput {
            optimized: OptimizedGraph {
                graph: ctx.graph,
                groups: ctx.groups,
                stats,
                mem_model: ctx.mem_model,
            },
            timings,
            diagnostics: ctx.diagnostics,
        })
    }
}

// ---------------------------------------------------------------------
// Core passes (the SmartMem sequence; baselines add their own).
// ---------------------------------------------------------------------

/// Layout Transformation Elimination (§3.2.1). With `enabled = false`
/// the pass still runs — producing the identity elimination result the
/// downstream passes consume — so baselines share the same sequence
/// shape.
#[derive(Clone, Copy, Debug)]
pub struct LtePass {
    /// Eliminate transformation operators into index maps.
    pub enabled: bool,
    /// Strength-reduce the composed maps (index comprehension).
    pub index_comprehension: bool,
}

impl LtePass {
    /// The no-elimination variant used by every baseline.
    pub fn disabled() -> Self {
        LtePass { enabled: false, index_comprehension: false }
    }
}

impl Pass for LtePass {
    fn name(&self) -> &'static str {
        "lte"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let lte = eliminate(&ctx.graph, self.enabled, self.index_comprehension);
        if self.enabled {
            ctx.note(
                self.name(),
                format!(
                    "eliminated {} of {} operators",
                    lte.eliminated.len(),
                    ctx.graph.op_count()
                ),
            );
        }
        ctx.lte = Some(lte);
        Ok(())
    }
}

/// DNNFusion-style classification-based fusion over the elimination
/// result (SmartMem and DNNFusion; baselines use `PolicyFusionPass`
/// from `smartmem-baselines`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FusionPass;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let drafts = fuse(&ctx.graph, ctx.expect_lte(self.name()), true);
        ctx.note(
            self.name(),
            format!(
                "{} kernels from {} kept operators",
                drafts.len(),
                ctx.expect_lte(self.name()).kept.len()
            ),
        );
        ctx.drafts = drafts;
        Ok(())
    }
}

/// Materializes [`KernelGroup`]s from the fusion drafts, resolving
/// external reads through the elimination result.
#[derive(Clone, Copy, Debug, Default)]
pub struct AssembleGroupsPass;

impl Pass for AssembleGroupsPass {
    fn name(&self) -> &'static str {
        "assemble-groups"
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        ctx.groups = assemble_groups(&ctx.graph, ctx.expect_lte(self.name()), &ctx.drafts);
        Ok(())
    }
}

/// Reduction-dimension-based layout selection (§3.2.2) with
/// redundant-copy accounting (§4.6).
#[derive(Clone, Copy, Debug)]
pub struct LayoutSelectPass {
    /// Selection aggressiveness (framework default / k=1 / full k=2).
    pub level: SelectionLevel,
}

impl Pass for LayoutSelectPass {
    fn name(&self) -> &'static str {
        "layout-select"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        // run ≡ group_context + refine-everything, by construction: the
        // incremental path reuses these exact pieces.
        self.group_context(ctx);
        let all: Vec<usize> = (0..ctx.groups.len()).collect();
        self.refine(ctx, &all)
    }

    fn as_group_refine(&self) -> Option<&dyn GroupRefine> {
        Some(self)
    }
}

impl GroupRefine for LayoutSelectPass {
    fn group_context(&self, ctx: &mut CompileCtx) -> Vec<u64> {
        // The global half of §3.2.2 — requirement collection, primary
        // layouts, redundant-copy provisioning — is cheap (no search)
        // and runs on every compile, which keeps the whole-model
        // redundancy statistics exact even when every group is a cache
        // hit. Only the per-group application is skipped for hits.
        let plan = plan_layouts(&ctx.graph, &ctx.groups, &ctx.device, self.level);
        let digests = ctx.groups.iter().map(|g| group_layout_context(&plan, g)).collect();
        ctx.redundancy = plan.stats;
        if ctx.redundancy.tensors > 0 {
            let (tensors, max_bytes) = (ctx.redundancy.tensors, ctx.redundancy.max_bytes);
            ctx.note(
                self.name(),
                format!("{tensors} tensors need redundant copies (max {max_bytes} bytes)"),
            );
        }
        ctx.layout_plan = Some(plan);
        digests
    }

    fn refine(&self, ctx: &mut CompileCtx, which: &[usize]) -> Result<(), Unsupported> {
        let plan = match ctx.layout_plan.take() {
            Some(p) => p,
            None => plan_layouts(&ctx.graph, &ctx.groups, &ctx.device, self.level),
        };
        for &i in which {
            apply_group_layouts(&plan, &ctx.graph, &mut ctx.groups[i], &ctx.device);
        }
        ctx.layout_plan = Some(plan);
        Ok(())
    }
}

/// Execution-configuration tuning: the GA when `tuned`, detuned
/// DNNFusion-era defaults otherwise.
#[derive(Clone, Debug)]
pub struct TunePass {
    /// Run the GA (otherwise untuned defaults with the DNNFusion-era
    /// quality penalty).
    pub tuned: bool,
    /// The tuner (deterministic per seed).
    pub tuner: GaTuner,
}

impl Pass for TunePass {
    fn name(&self) -> &'static str {
        "tune"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let all: Vec<usize> = (0..ctx.groups.len()).collect();
        self.refine(ctx, &all)
    }

    fn as_group_refine(&self) -> Option<&dyn GroupRefine> {
        Some(self)
    }
}

impl GroupRefine for TunePass {
    fn group_context(&self, ctx: &mut CompileCtx) -> Vec<u64> {
        // Tuning looks at nothing outside the group: the GA seed is
        // derived from the tuner configuration (in the sequence id) and
        // the group's own content hash.
        vec![0; ctx.groups.len()]
    }

    fn refine(&self, ctx: &mut CompileCtx, which: &[usize]) -> Result<(), Unsupported> {
        if !self.tuned {
            // Untuned (DNNFusion-era) kernels take no search — a serial
            // sweep is faster than spawning anything.
            for &i in which {
                let g = &mut ctx.groups[i];
                let node = ctx.graph.node(g.anchor);
                let (m, n) = iteration_mn(ctx.graph.tensor(node.outputs[0]).shape.dims());
                g.config = ExecConfig::default();
                // DNNFusion's transform kernels in particular were not
                // layout-aware.
                let transform_penalty = if node.op.is_layout_transform() { 0.6 } else { 1.0 };
                g.utilization = utilization(&node.op, m, n, &g.config) * 0.7 * transform_penalty;
            }
            return Ok(());
        }
        // The GA dominates compile time, and each group's search is
        // independent: salt the seed with the group's content hash so
        // the result depends only on (tuner, op, extents, content) —
        // never on which thread ran it or where the group sits in the
        // model — then fan out over a work queue.
        let jobs: Vec<(usize, Op, usize, usize, u64)> = which
            .iter()
            .map(|&i| {
                let g = &ctx.groups[i];
                let node = ctx.graph.node(g.anchor);
                let (m, n) = iteration_mn(ctx.graph.tensor(node.outputs[0]).shape.dims());
                (i, node.op.clone(), m, n, group_content_hash(&ctx.graph, g))
            })
            .collect();
        let workers = std::thread::available_parallelism().map_or(4, usize::from).min(jobs.len());
        let mut results: Vec<Option<(ExecConfig, f64)>> = vec![None; jobs.len()];
        if workers <= 1 {
            for (slot, (_, op, m, n, salt)) in results.iter_mut().zip(&jobs) {
                *slot = Some(self.tuner.tune_salted(op, *m, *n, *salt));
            }
        } else {
            let slots: Vec<Mutex<Option<(ExecConfig, f64)>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let j = cursor.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs.len() {
                            break;
                        }
                        let (_, op, m, n, salt) = &jobs[j];
                        let tuned = self.tuner.tune_salted(op, *m, *n, *salt);
                        *slots[j].lock().expect("tune slot lock") = Some(tuned);
                    });
                }
            });
            for (slot, m) in results.iter_mut().zip(slots) {
                *slot = m.into_inner().expect("tune slot lock");
            }
        }
        for ((i, ..), tuned) in jobs.iter().zip(results) {
            let (config, util) = tuned.expect("every tuning job ran");
            ctx.groups[*i].config = config;
            ctx.groups[*i].utilization = util;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Framework, SmartMemPipeline};
    use smartmem_ir::{DType, GraphBuilder};

    fn toy() -> Graph {
        let mut b = GraphBuilder::new("toy");
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x, w);
        let t = b.transpose(mm, &[0, 2, 1]);
        let out = b.softmax(t, 2);
        b.output(out);
        b.finish()
    }

    #[test]
    fn manager_times_every_pass() {
        let device = DeviceConfig::snapdragon_8gen2();
        let out = SmartMemPipeline::new().passes().run_on(&toy(), &device).unwrap();
        assert_eq!(out.timings.len(), 6);
        let names: Vec<&str> = out.timings.iter().map(|t| t.pass.as_str()).collect();
        assert_eq!(
            names,
            vec!["streamline", "lte", "fusion", "assemble-groups", "layout-select", "tune"]
        );
        // Stats snapshots are monotone in information: groups appear at
        // assemble-groups and stay.
        assert_eq!(out.timings[0].stats.kernel_count, 0);
        assert!(out.timings[3].stats.kernel_count > 0);
        assert_eq!(out.timings[5].stats, out.optimized.stats);
    }

    #[test]
    fn diagnostics_record_elimination() {
        let device = DeviceConfig::snapdragon_8gen2();
        let out = SmartMemPipeline::new().passes().run_on(&toy(), &device).unwrap();
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.pass == "lte" && d.message.contains("eliminated")));
    }

    #[test]
    fn sequence_ids_separate_configs() {
        use crate::pipeline::SmartMemConfig;
        let full = SmartMemPipeline::new().passes().sequence_id();
        let base =
            SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level()).passes().sequence_id();
        let full2 = SmartMemPipeline::new().passes().sequence_id();
        assert_ne!(full, base);
        assert_eq!(full, full2);
    }

    #[test]
    fn manager_matches_monolithic_result() {
        // The pass sequence must reproduce exactly what the former
        // monolithic SmartMemPipeline::optimize computed.
        let device = DeviceConfig::snapdragon_8gen2();
        let g = toy();
        let opt = SmartMemPipeline::new().optimize(&g, &device).unwrap();
        let out = SmartMemPipeline::new().passes().run_on(&g, &device).unwrap();
        assert_eq!(opt.stats, out.optimized.stats);
        assert_eq!(opt.groups.len(), out.optimized.groups.len());
    }

    #[test]
    #[should_panic(expected = "requires an LtePass")]
    fn missing_lte_dependency_panics() {
        let device = DeviceConfig::snapdragon_8gen2();
        let _ = PassManager::new("broken").then(FusionPass).run_on(&toy(), &device);
    }
}
