//! The streamline pass family: transpose motion and absorption.
//!
//! FINN-style "streamlining" rewrites that push explicit layout
//! transformations together so they cancel, absorb into reshapes, or
//! fall out of the live graph entirely — the graph-level complement of
//! the paper's layout-transformation elimination (§4.2), which works on
//! the *kernel* level. Each rewrite is an ordinary [`Pass`] usable on
//! its own; [`StreamlinePass`] iterates the whole family to a fixpoint.
//!
//! The rules (all semantics-preserving under the reference interpreter
//! in `smartmem_ir::interp`):
//!
//! | pass                  | rewrite                                            |
//! |-----------------------|----------------------------------------------------|
//! | `remove-identity`     | `Identity(x) → x`, no-op `Reshape`/`Transpose`/`Slice`, 1-ary `Concat` |
//! | `cancel-transpose`    | `Transpose(Transpose(x, p), q) → Transpose(x, p∘q)` |
//! | `absorb-transpose`    | memory-order-preserving `Transpose → Reshape`; `Reshape∘Reshape → Reshape` |
//! | `move-transpose`      | `Unary(Transpose(x)) → Transpose(Unary(x))`; same for scalar and two-operand `Binary` |
//! | `collapse-repeated`   | `(x·c₁)·c₂ → x·(c₁c₂)`, `(x+c₁)+c₂ → x+(c₁+c₂)`, `Relu∘Relu → Relu`, `Neg∘Neg → id` |
//! | `cse`                 | duplicate ops with identical operands share one result |
//! | `const-fold`          | ops whose operands are all initialized weights become weights |
//!
//! Every sweep rebuilds the graph through [`GraphBuilder`], so dead
//! operators (ones whose outputs reach no graph output) and orphaned
//! weights are dropped as a side effect of any rewrite round.
//!
//! Termination: `move-transpose` strictly pushes transposes toward the
//! outputs and never increases their count; every other rule strictly
//! shrinks the node count or leaves the graph untouched. The fixpoint
//! loop therefore converges; [`StreamlinePass`] additionally caps the
//! iteration count as a backstop.

use crate::pass::{CompileCtx, Pass};
use crate::pipeline::Unsupported;
use smartmem_ir::interp::{eval_op, TensorValue};
use smartmem_ir::{
    DType, Graph, GraphBuilder, Node, Op, OpId, OpOrigin, TensorId, TensorKind, UnaryKind,
};
use std::collections::{HashMap, HashSet};

/// Constant folding refuses to materialize tensors larger than this
/// (elements per output) so a fold can never blow up the graph encoding.
const MAX_FOLD_NUMEL: u64 = 4096;

/// Safety cap on fixpoint rounds in [`StreamlinePass`]. The rule system
/// terminates on its own (see module docs); this is a backstop against
/// future rules breaking that argument silently.
const MAX_ROUNDS: usize = 16;

// ---------------------------------------------------------------------------
// Rebuild machinery
// ---------------------------------------------------------------------------

/// Liveness per node: a node is live iff any of its outputs transitively
/// feeds a graph output.
fn live_mask(g: &Graph) -> Vec<bool> {
    let mut tensor_live = vec![false; g.tensors().len()];
    for &t in g.outputs() {
        tensor_live[t.0 as usize] = true;
    }
    let mut node_live = vec![false; g.nodes().len()];
    // Reverse topological walk: consumers appear after producers, so one
    // backward sweep settles liveness.
    for n in g.nodes().iter().rev() {
        let live = n.outputs.iter().any(|t| tensor_live[t.0 as usize]);
        node_live[n.id.0 as usize] = live;
        if live {
            for &t in &n.inputs {
                tensor_live[t.0 as usize] = true;
            }
        }
    }
    node_live
}

/// Incremental copy of an old graph into a fresh [`GraphBuilder`],
/// tracking the old-tensor → new-tensor mapping.
struct Rebuild<'g> {
    old: &'g Graph,
    b: GraphBuilder,
    map: HashMap<TensorId, TensorId>,
    /// Fresh-weight name counter (collision-free against copied names).
    fresh: usize,
    names: HashSet<String>,
    /// Orphaned weights skipped during the copy (counts as a change).
    dropped_weights: usize,
}

impl<'g> Rebuild<'g> {
    fn new(old: &'g Graph, live: &[bool]) -> Self {
        let mut b = GraphBuilder::new(old.name());
        let mut map = HashMap::new();
        let mut names = HashSet::new();
        let mut dropped_weights = 0usize;
        let is_output: HashSet<TensorId> = old.outputs().iter().copied().collect();
        for (i, t) in old.tensors().iter().enumerate() {
            let id = TensorId(i as u32);
            match t.kind {
                TensorKind::Input => {
                    names.insert(t.name.clone());
                    map.insert(id, b.input(t.name.clone(), t.shape.dims(), t.dtype));
                }
                TensorKind::Weight => {
                    // Keep a weight only if something live still reads it
                    // (or it is itself a graph output).
                    let used = is_output.contains(&id)
                        || old.consumers(id).iter().any(|c| live[c.0 as usize]);
                    if !used {
                        dropped_weights += 1;
                        continue;
                    }
                    names.insert(t.name.clone());
                    let nid = match &t.init {
                        Some(v) => {
                            b.weight_init(t.name.clone(), t.shape.dims(), t.dtype, v.clone())
                        }
                        None => b.weight(t.name.clone(), t.shape.dims(), t.dtype),
                    };
                    map.insert(id, nid);
                }
                TensorKind::Activation => {}
            }
        }
        Rebuild { old, b, map, fresh: 0, names, dropped_weights }
    }

    /// New id of an old tensor. Panics if the producer was skipped
    /// without aliasing — a sweep bug, not a graph property.
    fn lookup(&self, t: TensorId) -> TensorId {
        self.map[&t]
    }

    /// Copies `node` verbatim (with remapped operands).
    fn emit(&mut self, node: &Node) {
        let op = node.op.clone();
        let inputs: Vec<TensorId> = node.inputs.iter().map(|&t| self.lookup(t)).collect();
        self.push_mapped(op, &inputs, &node.outputs, node.origin);
    }

    /// Pushes a replacement op and maps `old_outs` to its outputs.
    fn push_mapped(
        &mut self,
        op: Op,
        inputs: &[TensorId],
        old_outs: &[TensorId],
        origin: OpOrigin,
    ) {
        self.b.set_origin(origin);
        let outs =
            self.b.try_push(op, inputs).expect("streamline rewrite produced an ill-typed op");
        assert_eq!(outs.len(), old_outs.len(), "streamline rewrite changed output arity");
        for (&o, &n) in old_outs.iter().zip(&outs) {
            self.map.insert(o, n);
        }
    }

    /// Maps an old output tensor onto an already-built new tensor
    /// (op deletion: consumers read the alias instead).
    fn alias(&mut self, old_out: TensorId, new_id: TensorId) {
        self.map.insert(old_out, new_id);
    }

    /// A fresh initialized weight with a collision-free name.
    fn fresh_weight(&mut self, dims: &[usize], dtype: DType, init: Vec<f32>) -> TensorId {
        loop {
            let name = format!("__sl{}", self.fresh);
            self.fresh += 1;
            if self.names.insert(name.clone()) {
                return self.b.weight_init(name, dims, dtype, init);
            }
        }
    }

    /// Finalizes the rebuilt graph, remapping the old outputs.
    fn finish(mut self) -> Graph {
        for &t in self.old.outputs() {
            let n = self.lookup(t);
            self.b.output(n);
        }
        self.b.finish()
    }
}

/// Runs one rewrite sweep: walks live nodes in topological order, lets
/// `decide` either replace a node (returning `true`) or decline
/// (`false`, node copied verbatim). Nodes in `skip` are dropped outright
/// (their outputs must have been aliased by an earlier `decide`).
/// Returns `None` when the sweep changed nothing, so callers can detect
/// fixpoints exactly.
fn rewrite_graph(
    g: &Graph,
    skip: &HashSet<OpId>,
    mut decide: impl FnMut(&Node, &mut Rebuild) -> bool,
) -> Option<Graph> {
    let live = live_mask(g);
    let dead = live.iter().filter(|&&l| !l).count();
    let mut rb = Rebuild::new(g, &live);
    let mut changed = dead > 0 || rb.dropped_weights > 0 || !skip.is_empty();
    for n in g.nodes() {
        if !live[n.id.0 as usize] || skip.contains(&n.id) {
            continue;
        }
        if decide(n, &mut rb) {
            changed = true;
        } else {
            rb.emit(n);
        }
    }
    if changed {
        Some(rb.finish())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Individual sweeps
// ---------------------------------------------------------------------------

/// Is `perm` the identity permutation?
fn is_identity_perm(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i == p)
}

/// A transpose preserves row-major memory order iff its permutation,
/// restricted to dimensions of extent > 1, is strictly increasing: unit
/// dims contribute nothing to the linear index, so moving only them is
/// a pure shape reinterpretation.
fn order_preserving(g: &Graph, input: TensorId, perm: &[usize]) -> bool {
    let shape = &g.tensor(input).shape;
    let mut last: Option<usize> = None;
    for &p in perm {
        if shape.dim(p) == 1 {
            continue;
        }
        if let Some(prev) = last {
            if p < prev {
                return false;
            }
        }
        last = Some(p);
    }
    true
}

/// `remove-identity`: drops ops that provably return their input.
fn sweep_remove_identity(g: &Graph) -> Option<Graph> {
    rewrite_graph(g, &HashSet::new(), |n, rb| {
        let identity = match &n.op {
            Op::Unary { kind: UnaryKind::Identity } => true,
            Op::Reshape { shape } => g.tensor(n.inputs[0]).shape.dims() == shape.as_slice(),
            Op::Transpose { perm } => is_identity_perm(perm),
            Op::Slice { axis, start, len } => {
                *start == 0 && *len == g.tensor(n.inputs[0]).shape.dim(*axis)
            }
            Op::Concat { .. } => n.inputs.len() == 1,
            _ => false,
        };
        if identity {
            let x = rb.lookup(n.inputs[0]);
            rb.alias(n.outputs[0], x);
        }
        identity
    })
}

/// `cancel-transpose`: merges back-to-back transposes into one (or into
/// nothing when they invert each other).
fn sweep_cancel_transpose(g: &Graph) -> Option<Graph> {
    rewrite_graph(g, &HashSet::new(), |n, rb| {
        let Op::Transpose { perm: q } = &n.op else { return false };
        let Some(pid) = g.producer(n.inputs[0]) else { return false };
        let inner = g.node(pid);
        let Op::Transpose { perm: p } = &inner.op else { return false };
        // out[i] = mid[q[i]] and mid[j] = x[p[j]]  ⇒  out[i] = x[p[q[i]]].
        let combined: Vec<usize> = q.iter().map(|&i| p[i]).collect();
        if is_identity_perm(&combined) {
            let x = rb.lookup(inner.inputs[0]);
            rb.alias(n.outputs[0], x);
        } else {
            let x = rb.lookup(inner.inputs[0]);
            rb.push_mapped(Op::Transpose { perm: combined }, &[x], &n.outputs, n.origin);
        }
        // The inner transpose stays for its other consumers; when this
        // was the only one, the next sweep prunes it as dead.
        true
    })
}

/// `absorb-transpose`: turns memory-order-preserving transposes into
/// reshapes and merges reshape chains.
fn sweep_absorb_transpose(g: &Graph) -> Option<Graph> {
    rewrite_graph(g, &HashSet::new(), |n, rb| match &n.op {
        Op::Transpose { perm } if order_preserving(g, n.inputs[0], perm) => {
            let out_dims = g.tensor(n.outputs[0]).shape.dims().to_vec();
            let x = rb.lookup(n.inputs[0]);
            rb.push_mapped(Op::Reshape { shape: out_dims }, &[x], &n.outputs, n.origin);
            true
        }
        Op::Reshape { shape } => {
            let Some(pid) = g.producer(n.inputs[0]) else { return false };
            let inner = g.node(pid);
            let Op::Reshape { .. } = &inner.op else { return false };
            let x = rb.lookup(inner.inputs[0]);
            if g.tensor(inner.inputs[0]).shape.dims() == shape.as_slice() {
                rb.alias(n.outputs[0], x);
            } else {
                rb.push_mapped(Op::Reshape { shape: shape.clone() }, &[x], &n.outputs, n.origin);
            }
            true
        }
        _ => false,
    })
}

/// All live consumers of `t`, deduplicated.
fn live_consumers(g: &Graph, live: &[bool], t: TensorId) -> Vec<OpId> {
    let mut cs: Vec<OpId> = g.consumers(t).iter().copied().filter(|c| live[c.0 as usize]).collect();
    cs.dedup();
    cs
}

/// A transpose node is movable past its consumer when the consumer is
/// its only (live) user and the transposed tensor is not itself a graph
/// output.
fn sole_consumer(g: &Graph, live: &[bool], t: TensorId) -> Option<OpId> {
    if g.outputs().contains(&t) {
        return None;
    }
    let cs = live_consumers(g, live, t);
    let first = *cs.first()?;
    cs.iter().all(|&c| c == first).then_some(first)
}

/// `move-transpose`: pushes a transpose past element-wise consumers so
/// it meets other transposes downstream. Patterns (x ⇢ transpose input):
///
/// * `Unary(Transpose(x)) → Transpose(Unary(x))`
/// * `Binary(Transpose(x), scalar) → Transpose(Binary(x, scalar))`
/// * `Binary(Transpose(x₁, p), Transpose(x₂, p)) → Transpose(Binary(x₁, x₂), p)`
///
/// The count of transpose ops never increases — each pattern consumes
/// at least as many transposes as it emits.
fn sweep_move_transpose(g: &Graph) -> Option<Graph> {
    let live = live_mask(g);
    // Plan first: consumer op id → the transpose nodes it absorbs.
    let mut skip: HashSet<OpId> = HashSet::new();
    let mut planned: HashSet<OpId> = HashSet::new();

    #[derive(Clone)]
    enum Plan {
        /// Re-emit consumer on the transpose's input, then transpose.
        Unary { t: OpId },
        /// Binary with one transposed operand and one scalar operand.
        Scalar { t: OpId, scalar_first: bool },
        /// Binary of two same-permutation transposes.
        Pair { t1: OpId, t2: OpId },
    }
    let mut plans: HashMap<OpId, Plan> = HashMap::new();

    let is_scalar = |t: TensorId| {
        let info = g.tensor(t);
        info.shape.numel() == 1 && info.shape.rank() <= 1
    };

    for n in g.nodes() {
        if !live[n.id.0 as usize] || planned.contains(&n.id) {
            continue;
        }
        let Op::Transpose { perm } = &n.op else { continue };
        let Some(c) = sole_consumer(g, &live, n.outputs[0]) else { continue };
        if plans.contains_key(&c) || skip.contains(&c) {
            continue;
        }
        let cn = g.node(c);
        // Moving past an output-producing op would park the transpose at
        // a graph output, where no downstream rule can ever cancel it —
        // and where kernel-level LTE could no longer fold it either.
        if cn.outputs.iter().any(|t| g.outputs().contains(t)) {
            continue;
        }
        match &cn.op {
            Op::Unary { kind } if *kind != UnaryKind::Identity => {
                plans.insert(c, Plan::Unary { t: n.id });
                skip.insert(n.id);
                planned.insert(n.id);
            }
            Op::Binary { .. } => {
                let a = cn.inputs[0];
                let bb = cn.inputs[1];
                let other = if a == n.outputs[0] { bb } else { a };
                // Pair pattern first: both operands are transposes with
                // the same permutation over equal input shapes (possibly
                // the same node twice).
                let pair = g.producer(other).and_then(|oid| {
                    let on = g.node(oid);
                    match &on.op {
                        Op::Transpose { perm: p2 }
                            if p2 == perm
                                && !skip.contains(&oid)
                                && sole_consumer(g, &live, on.outputs[0]) == Some(c)
                                && g.tensor(on.inputs[0]).shape == g.tensor(n.inputs[0]).shape =>
                        {
                            Some(oid)
                        }
                        _ => None,
                    }
                });
                if a == bb {
                    // Both operands are this same transpose.
                    plans.insert(c, Plan::Pair { t1: n.id, t2: n.id });
                    skip.insert(n.id);
                    planned.insert(n.id);
                } else if let Some(oid) = pair {
                    plans.insert(c, Plan::Pair { t1: n.id, t2: oid });
                    skip.insert(n.id);
                    skip.insert(oid);
                    planned.insert(n.id);
                    planned.insert(oid);
                } else if is_scalar(other) {
                    plans.insert(c, Plan::Scalar { t: n.id, scalar_first: a == other });
                    skip.insert(n.id);
                    planned.insert(n.id);
                }
            }
            _ => {}
        }
    }

    if plans.is_empty() {
        // No motion possible; let other sweeps handle dead-code cleanup
        // so this sweep is a no-op at fixpoint.
        return None;
    }

    rewrite_graph(g, &skip, |n, rb| {
        let Some(plan) = plans.get(&n.id) else { return false };
        match plan.clone() {
            Plan::Unary { t } => {
                let tn = g.node(t);
                let Op::Transpose { perm } = &tn.op else { unreachable!() };
                let x = rb.lookup(tn.inputs[0]);
                rb.b.set_origin(n.origin);
                let u = rb.b.try_push(n.op.clone(), &[x]).expect("moved unary ill-typed");
                rb.push_mapped(
                    Op::Transpose { perm: perm.clone() },
                    &[u[0]],
                    &n.outputs,
                    tn.origin,
                );
            }
            Plan::Scalar { t, scalar_first } => {
                let tn = g.node(t);
                let Op::Transpose { perm } = &tn.op else { unreachable!() };
                let x = rb.lookup(tn.inputs[0]);
                let s = rb.lookup(if scalar_first { n.inputs[0] } else { n.inputs[1] });
                let operands = if scalar_first { [s, x] } else { [x, s] };
                rb.b.set_origin(n.origin);
                let y = rb.b.try_push(n.op.clone(), &operands).expect("moved binary ill-typed");
                rb.push_mapped(
                    Op::Transpose { perm: perm.clone() },
                    &[y[0]],
                    &n.outputs,
                    tn.origin,
                );
            }
            Plan::Pair { t1, t2 } => {
                let tn1 = g.node(t1);
                let tn2 = g.node(t2);
                let Op::Transpose { perm } = &tn1.op else { unreachable!() };
                let x1 = rb.lookup(tn1.inputs[0]);
                let x2 = rb.lookup(tn2.inputs[0]);
                // Preserve operand order of the original binary.
                let (a, bb) = if n.inputs[0] == tn1.outputs[0] { (x1, x2) } else { (x2, x1) };
                rb.b.set_origin(n.origin);
                let y = rb.b.try_push(n.op.clone(), &[a, bb]).expect("moved binary ill-typed");
                rb.push_mapped(
                    Op::Transpose { perm: perm.clone() },
                    &[y[0]],
                    &n.outputs,
                    tn1.origin,
                );
            }
        }
        true
    })
}

/// The scalar initializer of `t`, if it is a 0/1-rank single-element
/// initialized weight.
fn scalar_init(g: &Graph, t: TensorId) -> Option<f32> {
    let info = g.tensor(t);
    if info.kind == TensorKind::Weight && info.shape.numel() == 1 && info.shape.rank() <= 1 {
        info.init.as_ref().map(|v| v[0])
    } else {
        None
    }
}

/// `collapse-repeated`: merges chains of the same scalar binary op into
/// a single application with a folded constant, and collapses
/// idempotent/involutive unary pairs (`Relu∘Relu`, `Neg∘Neg`).
fn sweep_collapse_repeated(g: &Graph) -> Option<Graph> {
    use smartmem_ir::BinaryKind;
    let live = live_mask(g);
    // Plan scalar-chain merges: outer binary id → (inner op id, combined constant).
    let mut skip: HashSet<OpId> = HashSet::new();
    let mut chain: HashMap<OpId, (OpId, f32)> = HashMap::new();
    for n in g.nodes() {
        if !live[n.id.0 as usize] {
            continue;
        }
        let Op::Binary { kind } = &n.op else { continue };
        if !matches!(kind, BinaryKind::Mul | BinaryKind::Add) {
            continue;
        }
        // Identify (value operand, scalar constant operand).
        let (x, c2) = match (scalar_init(g, n.inputs[0]), scalar_init(g, n.inputs[1])) {
            (None, Some(c)) => (n.inputs[0], c),
            (Some(c), None) => (n.inputs[1], c),
            _ => continue,
        };
        let Some(pid) = g.producer(x) else { continue };
        if skip.contains(&pid) || chain.contains_key(&pid) {
            continue;
        }
        let inner = g.node(pid);
        let Op::Binary { kind: ik } = &inner.op else { continue };
        if ik != kind || sole_consumer(g, &live, inner.outputs[0]) != Some(n.id) {
            continue;
        }
        let c1 = match (scalar_init(g, inner.inputs[0]), scalar_init(g, inner.inputs[1])) {
            (None, Some(c)) => c,
            (Some(c), None) => c,
            _ => continue,
        };
        let combined = match kind {
            BinaryKind::Mul => c1 * c2,
            _ => c1 + c2,
        };
        skip.insert(pid);
        chain.insert(n.id, (pid, combined));
    }

    let mut changed_any = false;
    let result = rewrite_graph(g, &skip, |n, rb| {
        if let Some(&(inner_id, c)) = chain.get(&n.id) {
            let inner = g.node(inner_id);
            // The inner op's non-constant operand.
            let x_old = *inner
                .inputs
                .iter()
                .find(|&&t| scalar_init(g, t).is_none())
                .expect("chain inner op lost its value operand");
            let x = rb.lookup(x_old);
            let w = rb.fresh_weight(&[1], DType::F32, vec![c]);
            rb.push_mapped(n.op.clone(), &[x, w], &n.outputs, n.origin);
            changed_any = true;
            return true;
        }
        // Relu∘Relu → inner Relu; Neg∘Neg → the grandparent input.
        if let Op::Unary { kind } = &n.op {
            if let Some(pid) = g.producer(n.inputs[0]) {
                let inner = g.node(pid);
                if inner.op == (Op::Unary { kind: *kind }) {
                    match kind {
                        UnaryKind::Relu => {
                            let x = rb.lookup(n.inputs[0]);
                            rb.alias(n.outputs[0], x);
                            changed_any = true;
                            return true;
                        }
                        UnaryKind::Neg => {
                            let x = rb.lookup(inner.inputs[0]);
                            rb.alias(n.outputs[0], x);
                            changed_any = true;
                            return true;
                        }
                        _ => {}
                    }
                }
            }
        }
        false
    });
    let _ = changed_any;
    result
}

/// `cse`: ops with identical operators and identical (remapped) operand
/// lists share one result.
fn sweep_cse(g: &Graph) -> Option<Graph> {
    // Keyed by remapped operands so chains of duplicates collapse in one
    // sweep; values are the *old* output ids of the first occurrence
    // (resolved through the rebuild map at alias time, after the driver
    // has emitted that first occurrence).
    let mut seen: HashMap<(String, Vec<TensorId>), Vec<TensorId>> = HashMap::new();
    rewrite_graph(g, &HashSet::new(), |n, rb| {
        let key_inputs: Vec<TensorId> = n.inputs.iter().map(|&t| rb.lookup(t)).collect();
        let key = (format!("{:?}", n.op), key_inputs);
        if let Some(prev_old) = seen.get(&key) {
            for (&o, &p) in n.outputs.iter().zip(prev_old.iter()) {
                let target = rb.lookup(p);
                rb.alias(o, target);
            }
            return true;
        }
        seen.insert(key, n.outputs.clone());
        false
    })
}

/// `const-fold`: an op whose operands are all initialized weights is
/// evaluated by the reference interpreter and replaced with weights.
fn sweep_const_fold(g: &Graph) -> Option<Graph> {
    rewrite_graph(g, &HashSet::new(), |n, rb| {
        let all_const = n.inputs.iter().all(|&t| {
            let info = g.tensor(t);
            info.kind == TensorKind::Weight && info.init.is_some() && info.dtype == DType::F32
        });
        if !all_const || n.inputs.is_empty() {
            return false;
        }
        if n.outputs.iter().any(|&t| g.tensor(t).shape.numel() > MAX_FOLD_NUMEL) {
            return false;
        }
        let vals: Vec<TensorValue> = n
            .inputs
            .iter()
            .map(|&t| {
                let info = g.tensor(t);
                TensorValue::new(info.shape.clone(), info.init.clone().unwrap())
            })
            .collect();
        let refs: Vec<&TensorValue> = vals.iter().collect();
        let Ok(outs) = eval_op(&n.op, &refs) else { return false };
        for (&old, v) in n.outputs.iter().zip(outs) {
            let dims = v.shape.dims().to_vec();
            let w = rb.fresh_weight(&dims, DType::F32, v.data);
            rb.alias(old, w);
        }
        true
    })
}

// ---------------------------------------------------------------------------
// Pass plumbing
// ---------------------------------------------------------------------------

/// Count of `Transpose` nodes in a graph.
pub(crate) fn transpose_count(g: &Graph) -> usize {
    g.nodes().iter().filter(|n| matches!(n.op, Op::Transpose { .. })).count()
}

/// One rewrite sweep: the rewritten graph, or `None` at exact fixpoint.
type Sweep = fn(&Graph) -> Option<Graph>;

/// Applies one sweep to `ctx.graph`, updating the streamline counters.
/// Returns whether the graph changed.
fn apply_sweep(ctx: &mut CompileCtx, sweep: Sweep) -> bool {
    let before_ops = ctx.graph.op_count();
    let before_t = transpose_count(&ctx.graph);
    match sweep(&ctx.graph) {
        Some(g) => {
            ctx.streamline_removed_ops += before_ops.saturating_sub(g.op_count());
            ctx.streamline_removed_transposes += before_t.saturating_sub(transpose_count(&g));
            ctx.graph = g;
            true
        }
        None => false,
    }
}

/// The family in canonical order. Identity removal first exposes
/// adjacency; CSE and folding run late so motion has already piled
/// duplicates together.
const FAMILY: [(&str, Sweep); 7] = [
    ("remove-identity", sweep_remove_identity),
    ("cancel-transpose", sweep_cancel_transpose),
    ("absorb-transpose", sweep_absorb_transpose),
    ("move-transpose", sweep_move_transpose),
    ("collapse-repeated", sweep_collapse_repeated),
    ("cse", sweep_cse),
    ("const-fold", sweep_const_fold),
];

macro_rules! single_pass {
    ($(#[$doc:meta])* $name:ident, $pass_name:literal, $sweep:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;

        impl Pass for $name {
            fn name(&self) -> &'static str {
                $pass_name
            }

            fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
                apply_sweep(ctx, $sweep);
                Ok(())
            }
        }
    };
}

single_pass!(
    /// Removes provable no-ops: `Identity`, same-shape `Reshape`,
    /// identity-permutation `Transpose`, full-range `Slice`, single-input
    /// `Concat`.
    RemoveIdentityPass,
    "remove-identity",
    sweep_remove_identity
);
single_pass!(
    /// Merges adjacent transposes; inverse pairs vanish.
    CancelTransposePass,
    "cancel-transpose",
    sweep_cancel_transpose
);
single_pass!(
    /// Rewrites memory-order-preserving transposes as reshapes and
    /// merges reshape chains.
    AbsorbTransposePass,
    "absorb-transpose",
    sweep_absorb_transpose
);
single_pass!(
    /// Pushes transposes past element-wise ops toward the outputs.
    MoveTransposePass,
    "move-transpose",
    sweep_move_transpose
);
single_pass!(
    /// Folds repeated scalar mul/add chains and idempotent/involutive
    /// unary pairs.
    CollapseRepeatedPass,
    "collapse-repeated",
    sweep_collapse_repeated
);
single_pass!(
    /// Graph-level common-subexpression elimination.
    CsePass,
    "cse",
    sweep_cse
);
single_pass!(
    /// Evaluates ops over initialized weights at compile time.
    ConstFoldPass,
    "const-fold",
    sweep_const_fold
);

/// The full streamline family iterated to a fixpoint.
///
/// Runs the seven sweeps in canonical order until one whole round
/// changes nothing (bounded by an internal iteration cap as a backstop).
/// Registered as the first pass of the SmartMem, TVM and TorchInductor
/// pipelines; DNNFusion-level SmartMem configs disable it so the
/// baseline comparison stays faithful.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamlinePass;

impl Pass for StreamlinePass {
    fn name(&self) -> &'static str {
        "streamline"
    }

    fn params(&self) -> String {
        format!("rounds={MAX_ROUNDS}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let ops_before = ctx.graph.op_count();
        let t_before = transpose_count(&ctx.graph);
        let mut rounds = 0usize;
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            for (_name, sweep) in FAMILY {
                changed |= apply_sweep(ctx, sweep);
            }
            rounds += 1;
            if !changed {
                break;
            }
        }
        ctx.note(
            "streamline",
            format!(
                "{rounds} round(s): {} -> {} ops, {} -> {} transposes",
                ops_before,
                ctx.graph.op_count(),
                t_before,
                transpose_count(&ctx.graph)
            ),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::interp::{approx_eq, run_graph};
    use smartmem_ir::{BinaryKind, DType};

    fn streamline(g: &Graph) -> Graph {
        let dev = smartmem_sim::DeviceConfig::snapdragon_8gen2();
        let mut ctx = CompileCtx::new("test", g, &dev);
        StreamlinePass.run(&mut ctx).unwrap();
        ctx.graph.validate().expect("streamlined graph invalid");
        ctx.graph
    }

    fn outputs_agree(a: &Graph, b: &Graph) {
        let oa = run_graph(a).unwrap();
        let ob = run_graph(b).unwrap();
        assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            assert!(approx_eq(x, y, 1e-4, 1e-5), "outputs diverge");
        }
    }

    #[test]
    fn inverse_transposes_cancel() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 3, 4], DType::F32);
        let t1 = b.transpose(x, &[2, 0, 1]);
        let t2 = b.transpose(t1, &[1, 2, 0]);
        let r = b.unary(t2, UnaryKind::Relu);
        b.output(r);
        let g = b.finish();
        let s = streamline(&g);
        assert_eq!(transpose_count(&s), 0);
        assert_eq!(s.op_count(), 1);
        outputs_agree(&g, &s);
    }

    #[test]
    fn order_preserving_transpose_becomes_reshape() {
        let mut b = GraphBuilder::new("t");
        // [1, 4, 1, 5] with perm [1, 0, 3, 2] moves only unit dims.
        let x = b.input("x", &[1, 4, 1, 5], DType::F32);
        let t = b.transpose(x, &[1, 0, 3, 2]);
        b.output(t);
        let g = b.finish();
        let s = streamline(&g);
        assert_eq!(transpose_count(&s), 0);
        outputs_agree(&g, &s);
    }

    #[test]
    fn transpose_moves_past_unary_and_cancels() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 3, 4], DType::F32);
        let t1 = b.transpose(x, &[2, 0, 1]);
        let r = b.unary(t1, UnaryKind::Relu);
        let t2 = b.transpose(r, &[1, 2, 0]);
        b.output(t2);
        let g = b.finish();
        assert_eq!(transpose_count(&g), 2);
        let s = streamline(&g);
        assert_eq!(transpose_count(&s), 0, "{s}");
        outputs_agree(&g, &s);
    }

    #[test]
    fn transpose_pair_moves_past_binary() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 3], DType::F32);
        let y = b.input("y", &[2, 3], DType::F32);
        let tx = b.transpose(x, &[1, 0]);
        let ty = b.transpose(y, &[1, 0]);
        let s_ = b.binary(tx, ty, BinaryKind::Sub);
        let back = b.transpose(s_, &[1, 0]);
        b.output(back);
        let g = b.finish();
        assert_eq!(transpose_count(&g), 3);
        let s = streamline(&g);
        assert_eq!(transpose_count(&s), 0, "{s}");
        outputs_agree(&g, &s);
    }

    #[test]
    fn scalar_chain_collapses_and_folds() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4], DType::F32);
        let c1 = b.weight_init("c1", &[1], DType::F32, vec![2.0]);
        let c2 = b.weight_init("c2", &[1], DType::F32, vec![3.0]);
        let m1 = b.binary(x, c1, BinaryKind::Mul);
        let m2 = b.binary(m1, c2, BinaryKind::Mul);
        b.output(m2);
        let g = b.finish();
        let s = streamline(&g);
        assert_eq!(s.op_count(), 1);
        outputs_agree(&g, &s);
    }

    #[test]
    fn cse_dedups_identical_ops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4], DType::F32);
        let r1 = b.unary(x, UnaryKind::Relu);
        let r2 = b.unary(x, UnaryKind::Relu);
        let s_ = b.binary(r1, r2, BinaryKind::Add);
        b.output(s_);
        let g = b.finish();
        let s = streamline(&g);
        assert_eq!(s.op_count(), 2, "{s}");
        outputs_agree(&g, &s);
    }

    #[test]
    fn const_fold_evaluates_weight_ops() {
        let mut b = GraphBuilder::new("t");
        let w1 = b.weight_init("w1", &[2, 2], DType::F32, vec![1.0, 2.0, 3.0, 4.0]);
        let w2 = b.weight_init("w2", &[2, 2], DType::F32, vec![5.0, 6.0, 7.0, 8.0]);
        let x = b.input("x", &[2, 2], DType::F32);
        let ws = b.binary(w1, w2, BinaryKind::Add);
        let y = b.binary(x, ws, BinaryKind::Add);
        b.output(y);
        let g = b.finish();
        let s = streamline(&g);
        assert_eq!(s.op_count(), 1);
        outputs_agree(&g, &s);
    }

    #[test]
    fn dead_branches_are_pruned() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[4], DType::F32);
        let live = b.unary(x, UnaryKind::Relu);
        let dead = b.unary(x, UnaryKind::Gelu);
        let _dead2 = b.unary(dead, UnaryKind::Tanh);
        b.output(live);
        let g = b.finish();
        let s = streamline(&g);
        assert_eq!(s.op_count(), 1);
        outputs_agree(&g, &s);
    }

    #[test]
    fn fixpoint_is_idempotent() {
        for seed in 0..40 {
            let g = smartmem_ir::generate::random_graph(seed);
            let s1 = streamline(&g);
            let s2 = streamline(&s1);
            assert_eq!(
                smartmem_ir::import::export_json(&s1),
                smartmem_ir::import::export_json(&s2),
                "seed {seed} not idempotent"
            );
        }
    }

    #[test]
    fn random_graphs_preserve_semantics() {
        for seed in 0..60 {
            let g = smartmem_ir::generate::random_graph(seed);
            let s = streamline(&g);
            assert!(transpose_count(&s) <= transpose_count(&g), "seed {seed} grew transposes");
            let oa = run_graph(&g).unwrap();
            let ob = run_graph(&s).unwrap();
            for (x, y) in oa.iter().zip(&ob) {
                assert!(approx_eq(x, y, 1e-3, 1e-5), "seed {seed} outputs diverge");
            }
        }
    }

    #[test]
    fn single_passes_report_counters() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 3], DType::F32);
        let t1 = b.transpose(x, &[1, 0]);
        let t2 = b.transpose(t1, &[1, 0]);
        b.output(t2);
        let g = b.finish();
        let dev = smartmem_sim::DeviceConfig::snapdragon_8gen2();
        let mut ctx = CompileCtx::new("test", &g, &dev);
        CancelTransposePass.run(&mut ctx).unwrap();
        // Cancellation aliases through; dead inner transpose goes next
        // sweep — run identity removal to flush it.
        RemoveIdentityPass.run(&mut ctx).unwrap();
        assert_eq!(transpose_count(&ctx.graph), 0);
        assert!(ctx.streamline_removed_transposes >= 2);
        assert!(ctx.streamline_removed_ops >= 2);
    }
}
