//! Layout Transformation Elimination (§3.2.1).
//!
//! Walks the graph in topological order and *eliminates* every
//! Fixed-output operator whose effect can be expressed as a static
//! coordinate mapping (`Reshape`, `Transpose`, `DepthToSpace`,
//! `SpaceToDepth`, `Slice`, `Split`). Chains of such operators compose
//! into a single [`IndexMap`] attached to the surviving edge, exactly as
//! in Fig. 3 of the paper; consumers then read the producer's tensor
//! through the (strength-reduced) map instead of materializing the
//! intermediate.
//!
//! `Gather` is Fixed-output in the paper's taxonomy but its mapping is
//! data-dependent (runtime indices), so it is kept as a kernel here —
//! the paper's evaluated graphs treat token-selection gathers the same
//! way.

use smartmem_index::IndexMap;
use smartmem_ir::{Graph, Op, OpId, TensorId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// Resolution of one tensor after elimination: the materialized source
/// tensor plus the composed pull-back map (`None` = identity).
#[derive(Clone, Debug)]
pub struct EdgeSource {
    /// Materialized tensor that physically holds the data.
    pub source: TensorId,
    /// Composed coordinate map from the logical tensor's coordinates to
    /// `source`'s coordinates, if any transformation was eliminated.
    pub map: Option<IndexMap>,
    /// Structural digest of the *canonical* composed map — the same
    /// composition evaluated at ceiling-padded extents — for graphs with
    /// symbolic dimensions (`None` on static graphs). Two buckets of the
    /// same model produce identical canonical digests, which is what
    /// lets the group cache treat a bucket change as a near-no-op.
    pub canon: Option<u64>,
}

/// Result of the elimination pass.
#[derive(Clone, Debug)]
pub struct LteResult {
    /// Operators that remain after elimination, in topological order.
    pub kept: Vec<OpId>,
    /// Eliminated operators.
    pub eliminated: Vec<OpId>,
    /// Resolution for every tensor in the graph.
    pub source_of: HashMap<TensorId, EdgeSource>,
}

impl LteResult {
    /// Resolves a tensor to its materialized source and composed map.
    pub fn resolve(&self, t: TensorId) -> EdgeSource {
        self.source_of.get(&t).cloned().unwrap_or(EdgeSource { source: t, map: None, canon: None })
    }
}

/// Whether an operator can be eliminated into a static index map.
pub fn is_eliminable(op: &Op) -> bool {
    matches!(
        op,
        Op::Reshape { .. }
            | Op::Transpose { .. }
            | Op::DepthToSpace { .. }
            | Op::SpaceToDepth { .. }
            | Op::Slice { .. }
            | Op::Split { .. }
    )
}

/// The pull-back map of one eliminable operator (output coords → input
/// coords).
///
/// # Panics
///
/// Panics if called on a non-eliminable operator.
pub fn op_pullback(
    op: &Op,
    in_extents: &[usize],
    out_extents: &[usize],
    output_idx: usize,
) -> IndexMap {
    match op {
        Op::Reshape { .. } => IndexMap::reshape(in_extents, out_extents),
        Op::Transpose { perm } => IndexMap::transpose(in_extents, perm),
        Op::DepthToSpace { block } => IndexMap::depth_to_space(in_extents, *block),
        Op::SpaceToDepth { block } => IndexMap::space_to_depth(in_extents, *block),
        Op::Slice { axis, start, len } => IndexMap::slice(in_extents, *axis, *start, *len),
        Op::Split { axis, parts } => IndexMap::split_part(in_extents, *axis, *parts, output_idx),
        other => panic!("{} is not an eliminable layout operator", other.mnemonic()),
    }
}

/// Memoization fingerprint of one (upstream map, operator, shapes)
/// composition.
///
/// Transformer graphs repeat structurally identical blocks dozens of
/// times, so identical compositions recur with identical upstream maps;
/// hashing the upstream map (structural hash of its expressions) is far
/// cheaper than re-running composition + strength reduction. Everything
/// streams into the hasher — no clones, no transient `String`s — so a
/// memo probe costs one tree walk. Keying on the 64-bit digest accepts
/// the same negligible collision odds as the session cache's graph
/// fingerprints.
fn compose_fingerprint(
    upstream: Option<&IndexMap>,
    op: &Op,
    in_shape: &[usize],
    out_shape: &[usize],
    output_idx: usize,
    simplify: bool,
) -> u64 {
    let mut h = DefaultHasher::new();
    match upstream {
        None => 0u8.hash(&mut h),
        Some(m) => {
            1u8.hash(&mut h);
            m.hash(&mut h);
        }
    }
    crate::session::hash_debug_into(&mut h, op);
    in_shape.hash(&mut h);
    out_shape.hash(&mut h);
    output_idx.hash(&mut h);
    // The memo is process-wide, so runs with and without index
    // comprehension must not alias each other's entries.
    simplify.hash(&mut h);
    h.finish()
}

/// The process-wide composition/simplification memo.
///
/// Keys are content fingerprints ([`compose_fingerprint`]), so entries
/// are valid across models, sessions and — via the persistent
/// compilation cache, which saves and restores this map — across
/// processes. Sharing one memo process-wide is what lets a warm restart
/// skip the first-occurrence simplification cost entirely (the last
/// "LTE compile time" item of the ROADMAP).
struct Memo {
    map: HashMap<u64, IndexMap>,
    /// Bumped on every mutation. Persistence compares generations — a
    /// true change counter — where it previously compared lengths,
    /// which is only a proxy (and a wrong one the moment any operation
    /// other than fresh insertion exists).
    generation: u64,
}

fn global_memo() -> &'static Mutex<Memo> {
    static MEMO: OnceLock<Mutex<Memo>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(Memo { map: HashMap::new(), generation: 0 }))
}

/// Number of memoized compositions currently held.
pub fn lte_memo_len() -> usize {
    global_memo().lock().expect("lte memo lock").map.len()
}

/// Monotone change counter of the memo: unequal values mean the memo
/// changed in between (the persistence layer's dirty marker).
pub(crate) fn lte_memo_generation() -> u64 {
    global_memo().lock().expect("lte memo lock").generation
}

/// Snapshot of the memo for persistence.
pub(crate) fn lte_memo_export() -> Vec<(u64, IndexMap)> {
    global_memo().lock().expect("lte memo lock").map.iter().map(|(k, v)| (*k, v.clone())).collect()
}

/// Merges persisted entries into the memo (existing keys win — they
/// were computed in this process and are definitionally correct).
pub(crate) fn lte_memo_import(entries: Vec<(u64, IndexMap)>) {
    let mut memo = global_memo().lock().expect("lte memo lock");
    for (k, v) in entries {
        if let std::collections::hash_map::Entry::Vacant(slot) = memo.map.entry(k) {
            slot.insert(v);
            memo.generation += 1;
        }
    }
}

/// Runs elimination over `graph`.
///
/// Composition + simplification of the per-edge index maps is memoized
/// across structurally identical chains (the compile-time hot spot on
/// repeated transformer blocks); use
/// [`eliminate_with_options`] to disable the memo for A/B timing.
pub fn eliminate(graph: &Graph, enabled: bool, simplify_maps: bool) -> LteResult {
    eliminate_with_options(graph, enabled, simplify_maps, true)
}

/// Runs elimination over `graph` with explicit switches.
///
/// * `enabled = false` keeps every operator (the DNNFusion baseline).
/// * `simplify_maps` applies index comprehension (strength reduction) to
///   the composed maps; disabling it isolates the contribution of index
///   simplification (Fig. 8's analysis).
/// * `memoize` caches composition + simplification by (upstream map,
///   operator, shapes) in the process-wide memo; results are identical
///   either way — the `pass_timing` binary reports the before/after
///   wall-clock.
///
/// Operators whose outputs are graph outputs are kept (their result must
/// be materialized).
pub fn eliminate_with_options(
    graph: &Graph,
    enabled: bool,
    simplify_maps: bool,
    memoize: bool,
) -> LteResult {
    let mut source_of: HashMap<TensorId, EdgeSource> = HashMap::new();
    let mut kept = Vec::new();
    let mut eliminated = Vec::new();

    if !enabled {
        return LteResult {
            kept: graph.nodes().iter().map(|n| n.id).collect(),
            eliminated,
            source_of,
        };
    }

    // Canonical (ceiling-padded) composed maps per tensor, maintained
    // alongside the concrete ones for graphs with symbolic dims. The
    // canonical compositions run through the same memo with
    // bucket-invariant fingerprints (padded shapes + padded op), so two
    // buckets of one model genuinely share memo entries.
    let sym = !graph.sym_dims().is_empty();
    let mut canon_of: HashMap<TensorId, IndexMap> = HashMap::new();

    for node in graph.nodes() {
        let feeds_graph_output = node.outputs.iter().any(|t| graph.outputs().contains(t));
        if !is_eliminable(&node.op) || feeds_graph_output {
            kept.push(node.id);
            continue;
        }
        // Resolve the input through already-eliminated predecessors.
        let input = node.inputs[0];
        let upstream = source_of.get(&input).cloned().unwrap_or(EdgeSource {
            source: input,
            map: None,
            canon: None,
        });
        let in_shape = graph.tensor(input).shape.dims().to_vec();
        let canon_in = if sym { graph.padded_dims(input) } else { Vec::new() };
        let canon_op = if sym { graph.padded_op(&node.op) } else { node.op.clone() };
        for (output_idx, &out) in node.outputs.iter().enumerate() {
            let out_shape = graph.tensor(out).shape.dims().to_vec();
            let composed = compose_one(
                upstream.map.as_ref(),
                &node.op,
                &in_shape,
                &out_shape,
                output_idx,
                simplify_maps,
                memoize,
            );
            let canon = if sym {
                let canon_out = graph.padded_dims(out);
                let composed_c = compose_one(
                    canon_of.get(&input),
                    &canon_op,
                    &canon_in,
                    &canon_out,
                    output_idx,
                    simplify_maps,
                    memoize,
                );
                let mut h = DefaultHasher::new();
                composed_c.hash(&mut h);
                let digest = h.finish();
                canon_of.insert(out, composed_c);
                Some(digest)
            } else {
                None
            };
            source_of
                .insert(out, EdgeSource { source: upstream.source, map: Some(composed), canon });
        }
        eliminated.push(node.id);
    }
    LteResult { kept, eliminated, source_of }
}

/// Composes (and optionally simplifies) one pull-back onto an upstream
/// map, through the process-wide memo when `memoize` is set. Probe and
/// insert run under short locks: the composition itself runs unlocked
/// so parallel zoo compiles don't serialize behind one slow strength
/// reduction.
#[allow(clippy::too_many_arguments)]
fn compose_one(
    upstream: Option<&IndexMap>,
    op: &Op,
    in_shape: &[usize],
    out_shape: &[usize],
    output_idx: usize,
    simplify_maps: bool,
    memoize: bool,
) -> IndexMap {
    let compose = || {
        let own = op_pullback(op, in_shape, out_shape, output_idx);
        let composed = match upstream {
            None => own,
            Some(m) => m.then(&own),
        };
        if simplify_maps && !composed.is_identity() {
            composed.simplify()
        } else {
            composed
        }
    };
    if !memoize {
        return compose();
    }
    let key = compose_fingerprint(upstream, op, in_shape, out_shape, output_idx, simplify_maps);
    let cached = global_memo().lock().expect("lte memo lock").map.get(&key).cloned();
    match cached {
        Some(m) => m,
        None => {
            let m = compose();
            let mut memo = global_memo().lock().expect("lte memo lock");
            memo.map.insert(key, m.clone());
            memo.generation += 1;
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    fn chain_graph() -> Graph {
        // conv -> reshape -> transpose -> gelu -> output
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[1, 16, 8, 8], DType::F16);
        let w = b.weight("w", &[32, 16, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.reshape(c, &[1, 32, 64]);
        let t = b.transpose(r, &[0, 2, 1]);
        let g = b.unary(t, UnaryKind::Gelu);
        b.output(g);
        b.finish()
    }

    #[test]
    fn eliminates_reshape_transpose_chain() {
        let g = chain_graph();
        let r = eliminate(&g, true, true);
        assert_eq!(r.eliminated.len(), 2);
        assert_eq!(r.kept.len(), 2); // conv + gelu
                                     // gelu's input resolves to conv's output with a composed map.
        let gelu = g.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let src = r.resolve(gelu.inputs[0]);
        let conv = g.nodes().iter().find(|n| n.op.mnemonic() == "Conv2d").unwrap();
        assert_eq!(src.source, conv.outputs[0]);
        let map = src.map.expect("composed map");
        assert_eq!(map.out_extents(), &[1, 64, 32]);
        assert_eq!(map.in_extents(), &[1, 32, 8, 8]);
    }

    #[test]
    fn composed_map_is_correct() {
        let g = chain_graph();
        let r = eliminate(&g, true, true);
        let gelu = g.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let map = r.resolve(gelu.inputs[0]).map.unwrap();
        // transpose [0,2,1] of reshape [1,32,64]: element (0, j, i) of the
        // transposed view = conv output element (0, i, (j / 8), (j % 8)).
        assert_eq!(map.eval(&[0, 9, 5]), vec![0, 5, 1, 1]);
        assert_eq!(map.eval(&[0, 0, 31]), vec![0, 31, 0, 0]);
    }

    #[test]
    fn disabled_keeps_everything() {
        let g = chain_graph();
        let r = eliminate(&g, false, true);
        assert_eq!(r.kept.len(), g.op_count());
        assert!(r.eliminated.is_empty());
    }

    #[test]
    fn graph_output_transform_is_kept() {
        let mut b = GraphBuilder::new("out");
        let x = b.input("x", &[4, 4], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        let t = b.transpose(y, &[1, 0]);
        b.output(t);
        let g = b.finish();
        let r = eliminate(&g, true, true);
        assert!(r.eliminated.is_empty(), "output-feeding transpose must stay");
        assert_eq!(r.kept.len(), 2);
    }

    #[test]
    fn split_parts_resolve_independently() {
        let mut b = GraphBuilder::new("split");
        let x = b.input("x", &[2, 12], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        let parts = b.split(y, 1, 3);
        let s0 = b.unary(parts[0], UnaryKind::Gelu);
        let s2 = b.unary(parts[2], UnaryKind::Gelu);
        b.output(s0);
        b.output(s2);
        let g = b.finish();
        let r = eliminate(&g, true, true);
        assert_eq!(r.eliminated.len(), 1); // the split
        let relu_out = g.nodes()[0].outputs[0];
        let p0 = r.resolve(parts[0]);
        let p2 = r.resolve(parts[2]);
        assert_eq!(p0.source, relu_out);
        assert_eq!(p0.map.unwrap().eval(&[1, 3]), vec![1, 3]);
        assert_eq!(p2.map.unwrap().eval(&[1, 3]), vec![1, 11]);
    }

    #[test]
    fn memoized_elimination_matches_unmemoized() {
        // Repeat the same reshape/transpose chain several times (as
        // transformer blocks do) so the memo actually gets hits, then
        // require bit-identical resolutions.
        let mut b = GraphBuilder::new("blocks");
        let mut cur = b.input("x", &[2, 64, 32], DType::F16);
        for _ in 0..4 {
            let r = b.reshape(cur, &[2, 8, 8, 32]);
            let t = b.transpose(r, &[0, 2, 1, 3]);
            let r2 = b.reshape(t, &[2, 64, 32]);
            cur = b.unary(r2, UnaryKind::Gelu);
        }
        b.output(cur);
        let g = b.finish();
        for simplify in [true, false] {
            let memo = eliminate_with_options(&g, true, simplify, true);
            let plain = eliminate_with_options(&g, true, simplify, false);
            assert_eq!(memo.kept, plain.kept);
            assert_eq!(memo.eliminated, plain.eliminated);
            assert_eq!(memo.source_of.len(), plain.source_of.len());
            for (t, src) in &memo.source_of {
                let p = &plain.source_of[t];
                assert_eq!(src.source, p.source);
                assert_eq!(src.map, p.map, "maps diverge for tensor {t:?}");
            }
        }
    }

    #[test]
    fn canonical_digests_are_bucket_invariant() {
        // The same decoder-ish chain instantiated at two sequence
        // lengths of one bucket table: concrete maps differ, canonical
        // digests must be identical edge-for-edge.
        let build = |seq: usize| {
            let mut b = GraphBuilder::new("sym-lte");
            let x = b.input("x", &[1, seq, 24], DType::F16);
            let w = b.weight("w", &[24, 24], DType::F16);
            let h = b.matmul(x, w);
            let r = b.reshape(h, &[1, seq, 4, 6]);
            let t = b.transpose(r, &[0, 2, 1, 3]);
            let gelu = b.unary(t, UnaryKind::Gelu);
            b.output(gelu);
            let table = smartmem_ir::BucketTable::new(vec![32, 64, 128]).unwrap();
            b.finish().with_sym_dim("seq", &table, seq).unwrap()
        };
        let (ga, gb) = (build(48), build(96));
        let (ra, rb) = (eliminate(&ga, true, true), eliminate(&gb, true, true));
        assert_eq!(ra.eliminated.len(), 2);
        let gelu_a = ga.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let gelu_b = gb.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let sa = ra.resolve(gelu_a.inputs[0]);
        let sb = rb.resolve(gelu_b.inputs[0]);
        assert_ne!(sa.map, sb.map, "concrete maps embed the bound extent");
        assert_eq!(sa.canon, sb.canon, "canonical digests must be shared across buckets");
        assert!(sa.canon.is_some());
        // Static graphs carry no canonical digest.
        let st = eliminate(&chain_graph(), true, true);
        assert!(st.source_of.values().all(|e| e.canon.is_none()));
    }

    #[test]
    fn gather_is_not_eliminable() {
        assert!(!is_eliminable(&Op::Gather { axis: 0 }));
        assert!(is_eliminable(&Op::Reshape { shape: vec![1] }));
    }

    #[test]
    fn unsimplified_maps_cost_more() {
        let g = chain_graph();
        let simplified = eliminate(&g, true, true);
        let raw = eliminate(&g, true, false);
        let gelu = g.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let cs = simplified.resolve(gelu.inputs[0]).map.unwrap().cost().weighted();
        let cr = raw.resolve(gelu.inputs[0]).map.unwrap().cost().weighted();
        assert!(cs < cr, "index comprehension must reduce cost ({cs} vs {cr})");
    }
}
