//! Layout Transformation Elimination (§3.2.1).
//!
//! Walks the graph in topological order and *eliminates* every
//! Fixed-output operator whose effect can be expressed as a static
//! coordinate mapping (`Reshape`, `Transpose`, `DepthToSpace`,
//! `SpaceToDepth`, `Slice`, `Split`). Chains of such operators compose
//! into a single [`IndexMap`] attached to the surviving edge, exactly as
//! in Fig. 3 of the paper; consumers then read the producer's tensor
//! through the (strength-reduced) map instead of materializing the
//! intermediate.
//!
//! `Gather` is Fixed-output in the paper's taxonomy but its mapping is
//! data-dependent (runtime indices), so it is kept as a kernel here —
//! the paper's evaluated graphs treat token-selection gathers the same
//! way.

use smartmem_index::IndexMap;
use smartmem_ir::{Graph, Op, OpId, TensorId};
use std::collections::HashMap;

/// Resolution of one tensor after elimination: the materialized source
/// tensor plus the composed pull-back map (`None` = identity).
#[derive(Clone, Debug)]
pub struct EdgeSource {
    /// Materialized tensor that physically holds the data.
    pub source: TensorId,
    /// Composed coordinate map from the logical tensor's coordinates to
    /// `source`'s coordinates, if any transformation was eliminated.
    pub map: Option<IndexMap>,
}

/// Result of the elimination pass.
#[derive(Clone, Debug)]
pub struct LteResult {
    /// Operators that remain after elimination, in topological order.
    pub kept: Vec<OpId>,
    /// Eliminated operators.
    pub eliminated: Vec<OpId>,
    /// Resolution for every tensor in the graph.
    pub source_of: HashMap<TensorId, EdgeSource>,
}

impl LteResult {
    /// Resolves a tensor to its materialized source and composed map.
    pub fn resolve(&self, t: TensorId) -> EdgeSource {
        self.source_of.get(&t).cloned().unwrap_or(EdgeSource { source: t, map: None })
    }
}

/// Whether an operator can be eliminated into a static index map.
pub fn is_eliminable(op: &Op) -> bool {
    matches!(
        op,
        Op::Reshape { .. }
            | Op::Transpose { .. }
            | Op::DepthToSpace { .. }
            | Op::SpaceToDepth { .. }
            | Op::Slice { .. }
            | Op::Split { .. }
    )
}

/// The pull-back map of one eliminable operator (output coords → input
/// coords).
///
/// # Panics
///
/// Panics if called on a non-eliminable operator.
pub fn op_pullback(
    op: &Op,
    in_extents: &[usize],
    out_extents: &[usize],
    output_idx: usize,
) -> IndexMap {
    match op {
        Op::Reshape { .. } => IndexMap::reshape(in_extents, out_extents),
        Op::Transpose { perm } => IndexMap::transpose(in_extents, perm),
        Op::DepthToSpace { block } => IndexMap::depth_to_space(in_extents, *block),
        Op::SpaceToDepth { block } => IndexMap::space_to_depth(in_extents, *block),
        Op::Slice { axis, start, len } => IndexMap::slice(in_extents, *axis, *start, *len),
        Op::Split { axis, parts } => IndexMap::split_part(in_extents, *axis, *parts, output_idx),
        other => panic!("{} is not an eliminable layout operator", other.mnemonic()),
    }
}

/// Runs elimination over `graph`.
///
/// * `enabled = false` keeps every operator (the DNNFusion baseline).
/// * `simplify_maps` applies index comprehension (strength reduction) to
///   the composed maps; disabling it isolates the contribution of index
///   simplification (Fig. 8's analysis).
///
/// Operators whose outputs are graph outputs are kept (their result must
/// be materialized).
pub fn eliminate(graph: &Graph, enabled: bool, simplify_maps: bool) -> LteResult {
    let mut source_of: HashMap<TensorId, EdgeSource> = HashMap::new();
    let mut kept = Vec::new();
    let mut eliminated = Vec::new();

    if !enabled {
        return LteResult {
            kept: graph.nodes().iter().map(|n| n.id).collect(),
            eliminated,
            source_of,
        };
    }

    for node in graph.nodes() {
        let feeds_graph_output = node.outputs.iter().any(|t| graph.outputs().contains(t));
        if !is_eliminable(&node.op) || feeds_graph_output {
            kept.push(node.id);
            continue;
        }
        // Resolve the input through already-eliminated predecessors.
        let input = node.inputs[0];
        let upstream =
            source_of.get(&input).cloned().unwrap_or(EdgeSource { source: input, map: None });
        let in_shape = graph.tensor(input).shape.dims().to_vec();
        for (output_idx, &out) in node.outputs.iter().enumerate() {
            let out_shape = graph.tensor(out).shape.dims().to_vec();
            let own = op_pullback(&node.op, &in_shape, &out_shape, output_idx);
            let composed = match &upstream.map {
                None => own,
                Some(m) => m.then(&own),
            };
            let composed = if simplify_maps { composed.simplify() } else { composed };
            source_of.insert(out, EdgeSource { source: upstream.source, map: Some(composed) });
        }
        eliminated.push(node.id);
    }
    LteResult { kept, eliminated, source_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    fn chain_graph() -> Graph {
        // conv -> reshape -> transpose -> gelu -> output
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[1, 16, 8, 8], DType::F16);
        let w = b.weight("w", &[32, 16, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.reshape(c, &[1, 32, 64]);
        let t = b.transpose(r, &[0, 2, 1]);
        let g = b.unary(t, UnaryKind::Gelu);
        b.output(g);
        b.finish()
    }

    #[test]
    fn eliminates_reshape_transpose_chain() {
        let g = chain_graph();
        let r = eliminate(&g, true, true);
        assert_eq!(r.eliminated.len(), 2);
        assert_eq!(r.kept.len(), 2); // conv + gelu
                                     // gelu's input resolves to conv's output with a composed map.
        let gelu = g.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let src = r.resolve(gelu.inputs[0]);
        let conv = g.nodes().iter().find(|n| n.op.mnemonic() == "Conv2d").unwrap();
        assert_eq!(src.source, conv.outputs[0]);
        let map = src.map.expect("composed map");
        assert_eq!(map.out_extents(), &[1, 64, 32]);
        assert_eq!(map.in_extents(), &[1, 32, 8, 8]);
    }

    #[test]
    fn composed_map_is_correct() {
        let g = chain_graph();
        let r = eliminate(&g, true, true);
        let gelu = g.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let map = r.resolve(gelu.inputs[0]).map.unwrap();
        // transpose [0,2,1] of reshape [1,32,64]: element (0, j, i) of the
        // transposed view = conv output element (0, i, (j / 8), (j % 8)).
        assert_eq!(map.eval(&[0, 9, 5]), vec![0, 5, 1, 1]);
        assert_eq!(map.eval(&[0, 0, 31]), vec![0, 31, 0, 0]);
    }

    #[test]
    fn disabled_keeps_everything() {
        let g = chain_graph();
        let r = eliminate(&g, false, true);
        assert_eq!(r.kept.len(), g.op_count());
        assert!(r.eliminated.is_empty());
    }

    #[test]
    fn graph_output_transform_is_kept() {
        let mut b = GraphBuilder::new("out");
        let x = b.input("x", &[4, 4], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        let t = b.transpose(y, &[1, 0]);
        b.output(t);
        let g = b.finish();
        let r = eliminate(&g, true, true);
        assert!(r.eliminated.is_empty(), "output-feeding transpose must stay");
        assert_eq!(r.kept.len(), 2);
    }

    #[test]
    fn split_parts_resolve_independently() {
        let mut b = GraphBuilder::new("split");
        let x = b.input("x", &[2, 12], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        let parts = b.split(y, 1, 3);
        let s0 = b.unary(parts[0], UnaryKind::Gelu);
        let s2 = b.unary(parts[2], UnaryKind::Gelu);
        b.output(s0);
        b.output(s2);
        let g = b.finish();
        let r = eliminate(&g, true, true);
        assert_eq!(r.eliminated.len(), 1); // the split
        let relu_out = g.nodes()[0].outputs[0];
        let p0 = r.resolve(parts[0]);
        let p2 = r.resolve(parts[2]);
        assert_eq!(p0.source, relu_out);
        assert_eq!(p0.map.unwrap().eval(&[1, 3]), vec![1, 3]);
        assert_eq!(p2.map.unwrap().eval(&[1, 3]), vec![1, 11]);
    }

    #[test]
    fn gather_is_not_eliminable() {
        assert!(!is_eliminable(&Op::Gather { axis: 0 }));
        assert!(is_eliminable(&Op::Reshape { shape: vec![1] }));
    }

    #[test]
    fn unsimplified_maps_cost_more() {
        let g = chain_graph();
        let simplified = eliminate(&g, true, true);
        let raw = eliminate(&g, true, false);
        let gelu = g.nodes().iter().find(|n| n.op.mnemonic() == "Unary").unwrap();
        let cs = simplified.resolve(gelu.inputs[0]).map.unwrap().cost().weighted();
        let cr = raw.resolve(gelu.inputs[0]).map.unwrap().cost().weighted();
        assert!(cs < cr, "index comprehension must reduce cost ({cs} vs {cr})");
    }
}
