//! Layout explorer: watch SmartMem eliminate a reshape/transpose chain,
//! inspect the composed index map before and after strength reduction
//! (Fig. 3 of the paper), and see the layout chosen for each tensor.
//!
//! Run with: `cargo run --release --example layout_explorer`

use smartmem::core::{classify, Framework, SmartMemPipeline};
use smartmem::index::IndexMap;
use smartmem::ir::{DType, GraphBuilder};
use smartmem::sim::DeviceConfig;

fn main() {
    // Fig. 3: Reshape [2,256,4] -> [16,8,4,4], then Transpose -> [16,4,8,4].
    let reshape = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
    let transpose = IndexMap::transpose(&[16, 8, 4, 4], &[0, 2, 1, 3]);
    let raw = reshape.then(&transpose);
    let simplified = raw.simplify();
    println!("Fig. 3 chain: Reshape[2,256,4 -> 16,8,4,4] . Transpose[0,2,1,3]");
    println!("  raw map:        {raw}");
    println!("  simplified map: {simplified}");
    let (rc, sc) = (raw.cost(), simplified.cost());
    println!(
        "  index ops: {} div/mod -> {} div/mod ({:.1}x cheaper overall)\n",
        rc.divmods(),
        sc.divmods(),
        rc.weighted() / sc.weighted()
    );

    // A small graph end-to-end.
    let mut b = GraphBuilder::new("explorer");
    let x = b.input("x", &[2, 256, 4], DType::F16);
    let w = b.weight("w", &[4, 4], DType::F16);
    let mm = b.matmul(x, w);
    let r = b.reshape(mm, &[16, 8, 4, 4]);
    let t = b.transpose(r, &[0, 2, 1, 3]);
    let s = b.softmax(t, 3);
    b.output(s);
    let graph = b.finish();

    println!("operator classification (Table 3):");
    for node in graph.nodes() {
        println!("  {:<10} -> {}", node.op.mnemonic(), classify(&node.op));
    }

    let device = DeviceConfig::snapdragon_8gen2();
    let opt = SmartMemPipeline::new().optimize(&graph, &device).expect("optimize");
    println!("\nkernels after SmartMem ({} eliminated):", opt.stats.eliminated_ops);
    for g in &opt.groups {
        let anchor = opt.graph.node(g.anchor);
        println!(
            "  {:<10} out {} layout {}  reads: {}",
            anchor.op.mnemonic(),
            opt.graph.tensor(g.output).shape,
            g.output_layout,
            g.reads
                .iter()
                .map(|r| {
                    let mapped = if r.map.is_some() { " (via index map)" } else { "" };
                    format!("{}{}", opt.graph.tensor(r.source).shape, mapped)
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
