//! LLM prefill study on Pythia-1B: how Layout Transformation
//! Elimination interacts with RoPE's slice/concat rotations and the
//! attention head-split chains of a decoder-only model.
//!
//! Run with: `cargo run --release --example llm_decode`

use smartmem::core::{Framework, SmartMemConfig, SmartMemPipeline};
use smartmem::models;
use smartmem::sim::DeviceConfig;

fn main() {
    let graph = models::pythia(1);
    let device = DeviceConfig::snapdragon_8gen2();
    println!(
        "Pythia-1B prefill (128 tokens): {} operators, {} layout transforms, {:.0} GMACs, {:.0}M params\n",
        graph.op_count(),
        graph.layout_transform_count(),
        graph.total_macs() as f64 / 1e9,
        graph.param_count() as f64 / 1e6
    );
    for (label, cfg) in [
        ("fusion only (DNNFusion level)", SmartMemConfig::dnnfusion_level()),
        ("+ layout transformation elim.", SmartMemConfig::lte_level()),
        ("+ reduction-dim layout select", SmartMemConfig::layout_level()),
        ("+ 2.5D texture & tuning (full)", SmartMemConfig::full()),
    ] {
        let opt = SmartMemPipeline::with_config(cfg).optimize(&graph, &device).expect("optimize");
        let r = opt.estimate(&device);
        println!(
            "{label:<31} {:>4} kernels  {:>7.1} ms  {:>5.0} GMACS  ({} eliminated)",
            r.kernel_count, r.latency_ms, r.gmacs, opt.stats.eliminated_ops
        );
    }
    println!("\ntokens/s at batch 1 (prefill-equivalent): see GMACS scaling; the decoder's");
    println!("reshape/transpose/RoPE chains are fully absorbed into index computations.");
}
