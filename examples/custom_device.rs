//! Custom device study: define your own SoC configuration and see how
//! SmartMem's advantage shifts with bandwidth, texture support and
//! kernel-launch overhead (the Fig. 11 portability story, generalized).
//!
//! Run with: `cargo run --release --example custom_device`

use smartmem::baselines::DnnFusionFramework;
use smartmem::core::{Framework, SmartMemPipeline};
use smartmem::models;
use smartmem::sim::DeviceConfig;

fn main() {
    let graph = models::swin_tiny(1);
    let dnnf = DnnFusionFramework::new();
    let ours = SmartMemPipeline::new();

    // A hypothetical mid-range SoC: less bandwidth, slower dispatch,
    // smaller texture cache than the 8 Gen 2.
    let mut custom = DeviceConfig::snapdragon_8gen2();
    custom.name = "Custom mid-range SoC".into();
    custom.peak_tmacs = 0.8;
    custom.global_bw_gbps = 30.0;
    custom.texture_bw_gbps = 220.0;
    custom.kernel_launch_us = 140.0;
    custom.memory_gb = 6.0;

    for device in [
        DeviceConfig::snapdragon_8gen2(),
        DeviceConfig::snapdragon_835(),
        DeviceConfig::dimensity_700(),
        custom,
    ] {
        let d = dnnf.run(&graph, &device);
        let o = ours.run(&graph, &device);
        match (d, o) {
            (Ok(d), Ok(o)) => println!(
                "{:<36} DNNF {:>7.1} ms   SmartMem {:>7.1} ms   speedup {:.1}x",
                device.name,
                d.latency_ms,
                o.latency_ms,
                d.latency_ms / o.latency_ms
            ),
            (d, o) => println!(
                "{:<36} DNNF {}   SmartMem {}",
                device.name,
                d.map(|r| format!("{:.1} ms", r.latency_ms)).unwrap_or_else(|e| e.reason),
                o.map(|r| format!("{:.1} ms", r.latency_ms)).unwrap_or_else(|e| e.reason),
            ),
        }
    }
}
