//! Quickstart: build a small transformer-style graph, optimize it with
//! SmartMem, and compare against the DNNFusion baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use smartmem::baselines::DnnFusionFramework;
use smartmem::core::{Framework, SmartMemPipeline};
use smartmem::ir::{DType, GraphBuilder};
use smartmem::sim::DeviceConfig;

fn main() {
    // 1. Describe a computation graph (a windowed-attention snippet with
    //    the explicit reshape/transpose chains a real exporter emits).
    let mut b = GraphBuilder::new("quickstart");
    let x = b.input("tokens", &[1, 196, 384], DType::F16);
    let wq = b.weight("wq", &[384, 1152], DType::F16);
    let n = b.layer_norm(x, vec![2]);
    let qkv = b.matmul(n, wq);
    let r = b.reshape(qkv, &[1, 196, 3, 6, 64]);
    let t = b.transpose(r, &[2, 0, 3, 1, 4]);
    let parts = b.split(t, 0, 3);
    let q = b.reshape(parts[0], &[6, 196, 64]);
    let k = b.reshape(parts[1], &[6, 196, 64]);
    let v = b.reshape(parts[2], &[6, 196, 64]);
    let attn = b.matmul_t(q, k, false, true);
    let p = b.softmax(attn, 2);
    let o = b.matmul(p, v);
    b.output(o);
    let graph = b.finish();
    println!(
        "source graph: {} operators, {} explicit layout transforms",
        graph.op_count(),
        graph.layout_transform_count()
    );

    // 2. Optimize for the paper's primary platform.
    let device = DeviceConfig::snapdragon_8gen2();
    let smartmem = SmartMemPipeline::new().optimize(&graph, &device).expect("optimize");
    println!(
        "SmartMem: {} kernels ({} layout ops eliminated, {} ops fused)",
        smartmem.stats.kernel_count, smartmem.stats.eliminated_ops, smartmem.stats.fused_ops
    );

    // 3. Estimate execution and compare with DNNFusion.
    let ours = smartmem.estimate(&device);
    let dnnf = DnnFusionFramework::new().run(&graph, &device).expect("dnnf");
    println!(
        "DNNFusion: {:.3} ms   SmartMem: {:.3} ms   speedup {:.2}x",
        dnnf.latency_ms,
        ours.latency_ms,
        dnnf.latency_ms / ours.latency_ms
    );
    println!(
        "transform time: DNNFusion {:.1}% -> SmartMem {:.1}%",
        100.0 * dnnf.transform_fraction(),
        100.0 * ours.transform_fraction()
    );
}
