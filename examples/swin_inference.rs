//! End-to-end Swin Transformer inference study: the paper's flagship
//! workload, compared across all six frameworks with the Table 1-style
//! latency attribution.
//!
//! Run with: `cargo run --release --example swin_inference`

use smartmem::baselines::all_mobile_frameworks;
use smartmem::models;
use smartmem::sim::DeviceConfig;

fn main() {
    let graph = models::swin_tiny(1);
    let device = DeviceConfig::snapdragon_8gen2();
    println!(
        "Swin-T: {} operators, {} layout transforms, {:.1} GMACs, {:.1}M params\n",
        graph.op_count(),
        graph.layout_transform_count(),
        graph.total_macs() as f64 / 1e9,
        graph.param_count() as f64 / 1e6
    );
    println!(
        "{:<12} {:>8} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "framework", "kernels", "lat(ms)", "comp%", "expl%", "impl%", "GMACS"
    );
    for fw in all_mobile_frameworks() {
        match fw.run(&graph, &device) {
            Ok(r) => println!(
                "{:<12} {:>8} {:>9.1} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.0}",
                fw.name(),
                r.kernel_count,
                r.latency_ms,
                100.0 * r.compute_ms / r.latency_ms,
                100.0 * r.explicit_ms / r.latency_ms,
                100.0 * r.implicit_ms / r.latency_ms,
                r.gmacs
            ),
            Err(e) => println!("{:<12} {}", fw.name(), e.reason),
        }
    }
}
