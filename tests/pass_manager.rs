//! Pass-manager architecture tests: OptStats snapshots per framework on
//! zoo models, per-pass timing observability, and compilation-cache
//! equivalence with cold compiles.

use smartmem::baselines::{all_mobile_frameworks, TorchInductorFramework};
use smartmem::core::{CompileSession, Framework, OptStats, SmartMemPipeline};
use smartmem::ir::Graph;
use smartmem::models;
use smartmem::sim::DeviceConfig;

fn device() -> DeviceConfig {
    DeviceConfig::snapdragon_8gen2()
}

/// All seven frameworks: the paper's six mobile columns plus
/// TorchInductor (Table 9).
fn all_frameworks() -> Vec<Box<dyn Framework>> {
    let mut fws = all_mobile_frameworks();
    fws.push(Box::new(TorchInductorFramework::new()));
    fws
}

fn zoo() -> Vec<(&'static str, Graph)> {
    vec![
        ("swin_tiny", models::swin_tiny(1)),
        ("resnext50", models::resnext50(1)),
        ("yolo_v8", models::yolo_v8(1)),
        ("vit", models::vit(1)),
    ]
}

/// (kernel_count, eliminated_ops, implicit_inserted); `None` marks
/// operator-support rejections (the paper's "–" entries).
type StatsSnapshot = Option<(usize, usize, usize)>;

/// Snapshot per (framework, model). Any change here is a deliberate
/// behaviour change of a pass, not noise — update the table
/// consciously.
const SNAPSHOTS: &[(&str, &str, StatsSnapshot)] = &[
    ("MNN", "swin_tiny", Some((436, 0, 1))),
    ("NCNN", "swin_tiny", None),
    ("TFLite", "swin_tiny", None),
    ("TVM", "swin_tiny", Some((475, 0, 1))),
    ("DNNFusion", "swin_tiny", Some((254, 0, 0))),
    ("SmartMem", "swin_tiny", Some((154, 244, 0))),
    ("TorchInductor", "swin_tiny", Some((250, 0, 0))),
    ("MNN", "resnext50", Some((75, 0, 3))),
    ("NCNN", "resnext50", Some((175, 0, 0))),
    ("TFLite", "resnext50", Some((75, 0, 3))),
    ("TVM", "resnext50", Some((126, 0, 3))),
    ("DNNFusion", "resnext50", Some((56, 0, 0))),
    ("SmartMem", "resnext50", Some((56, 0, 0))),
    ("TorchInductor", "resnext50", Some((56, 0, 0))),
    ("MNN", "yolo_v8", Some((168, 0, 65))),
    ("NCNN", "yolo_v8", Some((233, 0, 0))),
    ("TFLite", "yolo_v8", None),
    ("TVM", "yolo_v8", Some((198, 0, 65))),
    ("DNNFusion", "yolo_v8", Some((95, 0, 0))),
    ("SmartMem", "yolo_v8", Some((85, 13, 0))),
    ("TorchInductor", "yolo_v8", Some((95, 0, 0))),
    ("MNN", "vit", Some((236, 0, 1))),
    ("NCNN", "vit", None),
    ("TFLite", "vit", None),
    ("TVM", "vit", Some((309, 0, 1))),
    ("DNNFusion", "vit", Some((149, 0, 0))),
    ("SmartMem", "vit", Some((124, 110, 0))),
    ("TorchInductor", "vit", Some((149, 0, 0))),
];

#[test]
fn optstats_snapshots_per_framework() {
    let device = device();
    let frameworks = all_frameworks();
    let zoo = zoo();
    for &(fw_name, model, expected) in SNAPSHOTS {
        let fw = frameworks.iter().find(|f| f.name() == fw_name).expect("framework exists");
        let graph = &zoo.iter().find(|(n, _)| *n == model).expect("model exists").1;
        let actual = fw
            .optimize(graph, &device)
            .ok()
            .map(|o| (o.stats.kernel_count, o.stats.eliminated_ops, o.stats.implicit_inserted));
        assert_eq!(
            actual, expected,
            "{fw_name} on {model}: snapshot (kernels, eliminated, implicit) drifted"
        );
    }
}

#[test]
fn every_framework_is_a_pass_sequence() {
    // The declarative sequences are non-trivial, named, and distinct.
    let mut ids = std::collections::HashSet::new();
    for fw in all_frameworks() {
        let manager = fw.passes();
        assert_eq!(manager.framework(), fw.name());
        assert!(manager.pass_names().len() >= 5, "{} has a degenerate sequence", fw.name());
        assert!(ids.insert(manager.sequence_id()), "{} shares a sequence id", fw.name());
    }
}

#[test]
fn per_pass_timing_covers_the_sequence() {
    let device = device();
    let graph = models::swin_tiny(1);
    for fw in all_frameworks() {
        let Ok(out) = fw.optimize_timed(&graph, &device) else { continue };
        let names: Vec<String> = out.timings.iter().map(|t| t.pass.clone()).collect();
        let declared: Vec<String> =
            fw.passes().pass_names().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, declared, "{}: timed passes != declared sequence", fw.name());
        assert_eq!(out.timings.last().unwrap().stats, out.optimized.stats);
    }
}

#[test]
fn cache_returns_identical_results_to_cold_compile() {
    let device = device();
    let session = CompileSession::new();
    let graph = models::swin_tiny(1);
    for fw in all_frameworks() {
        let cold = fw.optimize(&graph, &device);
        let cached_first = session.compile(fw.as_ref(), &graph, &device);
        let cached_again = session.compile(fw.as_ref(), &graph, &device);
        match (cold, cached_first, cached_again) {
            (Ok(cold), Ok(first), Ok(again)) => {
                assert_eq!(cold.stats, first.optimized.stats, "{}", fw.name());
                assert_eq!(cold.groups.len(), first.optimized.groups.len(), "{}", fw.name());
                // Warm result is the same cached object, and estimation
                // over it reproduces the cold latency exactly.
                assert_eq!(first.optimized.stats, again.optimized.stats);
                let cold_report = cold.estimate(&device);
                let warm_report = again.optimized.estimate(&device);
                assert_eq!(cold_report.latency_ms, warm_report.latency_ms, "{}", fw.name());
            }
            (Err(_), Err(_), Err(_)) => {} // consistently unsupported
            (cold, first, _) => panic!(
                "{}: cold ({}) and cached ({}) compile disagree on supportability",
                fw.name(),
                cold.is_ok(),
                first.is_ok()
            ),
        }
    }
    let stats = session.stats();
    assert!(stats.hits >= 4, "expected warm hits, got {stats:?}");
}

#[test]
fn parallel_batch_equals_sequential_compiles() {
    let device = device();
    let session = CompileSession::new();
    let frameworks = all_frameworks();
    let graphs: Vec<Graph> = zoo().into_iter().map(|(_, g)| g).collect();
    let batch = session.compile_batch(&frameworks, &graphs, &device, 0);
    for (gi, row) in batch.iter().enumerate() {
        for (fi, res) in row.iter().enumerate() {
            let direct = frameworks[fi].optimize(&graphs[gi], &device);
            match (res, direct) {
                (Ok(b), Ok(d)) => assert_eq!(b.optimized.stats, d.stats),
                (Err(b), Err(d)) => assert_eq!(b.reason, d.reason),
                (b, d) => panic!(
                    "batch ({}) and direct ({}) disagree for framework {fi} model {gi}",
                    b.is_ok(),
                    d.is_ok()
                ),
            }
        }
    }
}

#[test]
fn smartmem_stats_are_internally_consistent() {
    let device = device();
    for (_, graph) in zoo() {
        if let Ok(opt) = SmartMemPipeline::new().optimize(&graph, &device) {
            let s: OptStats = opt.stats;
            assert_eq!(s.source_ops, graph.op_count());
            assert_eq!(s.kernel_count, opt.groups.len());
            assert_eq!(s.implicit_inserted, 0, "SmartMem never inserts relayouts");
            assert!(
                s.kernel_count + s.eliminated_ops + s.fused_ops + s.streamline_removed_ops
                    >= s.source_ops
            );
        }
    }
}

/// Per-pass OptStats snapshots on the checked-in import fixtures.
///
/// `finn_mlp` is the acceptance anchor for the streamline family: its
/// two explicit transposes (around a relu + scalar-mul chain) must be
/// moved together, cancelled, and never reappear — the pinned
/// `streamline_transposes_removed == 2` below is a deliberate contract.
#[test]
fn fixture_snapshots_per_pass() {
    use smartmem::ir::import::import_json;

    // (fixture, source_ops, final (kernels, eliminated, fused,
    //  streamline_removed_ops, streamline_transposes_removed),
    //  transposes left in the optimized graph)
    type FixtureRow =
        (&'static str, &'static str, usize, (usize, usize, usize, usize, usize), usize);
    const FIXTURES: &[FixtureRow] = &[
        ("finn_mlp", include_str!("fixtures/finn_mlp.json"), 6, (2, 0, 1, 3, 2), 0),
        (
            "convertlayout_cnn",
            include_str!("fixtures/convertlayout_cnn.json"),
            8,
            (1, 0, 2, 5, 2),
            0,
        ),
        ("single_op", include_str!("fixtures/single_op.json"), 1, (1, 0, 0, 0, 0), 0),
    ];

    let device = device();
    for &(name, src, source_ops, expected, transposes_left) in FIXTURES {
        let graph = import_json(src).unwrap_or_else(|e| panic!("{name}: import failed: {e}"));
        assert_eq!(graph.op_count(), source_ops, "{name}: fixture drifted");
        let out = SmartMemPipeline::new().optimize_timed(&graph, &device).unwrap();

        // Per-pass shape of the stats: streamline acts first and alone
        // on the streamline counters; groups appear at assemble-groups.
        let timings = &out.timings;
        assert_eq!(timings[0].pass, "streamline");
        assert_eq!(
            timings[0].stats.streamline_removed_ops, expected.3,
            "{name}: streamline removals drifted"
        );
        assert_eq!(
            timings[0].stats.streamline_transposes_removed, expected.4,
            "{name}: transpose removals drifted"
        );
        for t in timings {
            assert_eq!(
                t.stats.streamline_removed_ops, expected.3,
                "{name}: later pass {} altered streamline counters",
                t.pass
            );
        }

        let s = out.optimized.stats;
        let actual = (
            s.kernel_count,
            s.eliminated_ops,
            s.fused_ops,
            s.streamline_removed_ops,
            s.streamline_transposes_removed,
        );
        assert_eq!(actual, expected, "{name}: final stats drifted");
        let left =
            out.optimized.graph.nodes().iter().filter(|n| n.op.mnemonic() == "Transpose").count();
        assert_eq!(left, transposes_left, "{name}: residual transposes drifted");
    }
}

/// The fixtures compile under every framework that supports their
/// operator set, and no framework's rewrites grow the transpose count.
#[test]
fn fixtures_compile_under_all_frameworks() {
    use smartmem::ir::import::import_json;
    let device = device();
    for src in [
        include_str!("fixtures/finn_mlp.json"),
        include_str!("fixtures/convertlayout_cnn.json"),
        include_str!("fixtures/single_op.json"),
    ] {
        let graph = import_json(src).unwrap();
        let before = graph.nodes().iter().filter(|n| n.op.mnemonic() == "Transpose").count();
        for fw in all_frameworks() {
            if let Ok(opt) = fw.optimize(&graph, &device) {
                let after =
                    opt.graph.nodes().iter().filter(|n| n.op.mnemonic() == "Transpose").count();
                assert!(after <= before, "{} grew transposes on {}", fw.name(), graph.name());
            }
        }
    }
}
