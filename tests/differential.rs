//! Differential fuzz harness: hundreds of seeded random messy graphs
//! pushed through all seven optimizing pipelines, checked against the
//! reference interpreter.
//!
//! For every seed the harness asserts:
//!
//! 1. **Semantics preservation** — the optimized graph a pipeline
//!    carries forward interprets to the same outputs as the source
//!    graph (approximately: streamline reassociates float constant
//!    chains). Frameworks that reject a graph (`Unsupported`) are
//!    skipped, mirroring the paper's "–" entries.
//! 2. **Transpose monotonicity** — no pipeline's graph rewrites ever
//!    *increase* the number of explicit `Transpose` operators.
//! 3. **Idempotence** — re-running the full SmartMem pipeline on its
//!    own streamlined graph changes nothing (the streamline family
//!    reached a fixpoint).
//!
//! On failure, the offending graph is exported as JSON under
//! `target/differential-artifacts/` so a counterexample can be replayed
//! through `pass_timing --import` or turned into a fixture.

use smartmem::baselines::{all_mobile_frameworks, TorchInductorFramework};
use smartmem::core::Framework;
use smartmem::ir::generate::random_graph;
use smartmem::ir::import::export_json;
use smartmem::ir::interp::{approx_eq, run_graph, TensorValue};
use smartmem::ir::{Graph, Op};
use smartmem::sim::DeviceConfig;
use std::path::PathBuf;

/// Seeds per run: 200 by default (the PR-path budget), overridable via
/// `SMARTMEM_DIFF_SEEDS` — the nightly workflow soaks at 1000. Raise
/// freely: each graph is ≤ a few hundred elements.
fn seeds() -> u64 {
    match std::env::var("SMARTMEM_DIFF_SEEDS") {
        Ok(v) => v.parse().unwrap_or_else(|_| panic!("SMARTMEM_DIFF_SEEDS={v} is not a number")),
        Err(_) => 200,
    }
}

/// Relative tolerance for interpreter agreement. Streamlining folds and
/// reassociates f32 constant chains, so bit-exactness is not expected.
const REL_TOL: f32 = 1e-3;
const ABS_TOL: f32 = 1e-5;

fn all_frameworks() -> Vec<Box<dyn Framework>> {
    let mut fws = all_mobile_frameworks();
    fws.push(Box::new(TorchInductorFramework::new()));
    fws
}

fn transpose_count(g: &Graph) -> usize {
    g.nodes().iter().filter(|n| matches!(n.op, Op::Transpose { .. })).count()
}

/// Writes a counterexample graph next to the build artifacts and
/// returns its path for the assertion message.
fn dump_artifact(tag: &str, seed: u64, g: &Graph) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/differential-artifacts");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{tag}_seed{seed}.json"));
    let _ = std::fs::write(&path, export_json(g));
    path
}

fn agree(a: &[TensorValue], b: &[TensorValue]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(x, y, REL_TOL, ABS_TOL))
}

#[test]
fn pipelines_preserve_semantics_on_random_graphs() {
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks = all_frameworks();
    let seeds = seeds();
    let mut compiled = 0usize;
    let mut skipped = 0usize;
    for seed in 0..seeds {
        let g = random_graph(seed);
        let reference = run_graph(&g).unwrap_or_else(|e| {
            let p = dump_artifact("uninterpretable", seed, &g);
            panic!("seed {seed}: source graph fails to interpret ({e}); dumped to {p:?}")
        });
        let t_before = transpose_count(&g);
        for fw in &frameworks {
            let opt = match fw.optimize(&g, &device) {
                Ok(o) => o,
                Err(_) => {
                    skipped += 1;
                    continue;
                }
            };
            compiled += 1;
            let t_after = transpose_count(&opt.graph);
            if t_after > t_before {
                let p = dump_artifact("transpose_growth", seed, &g);
                panic!(
                    "seed {seed}: {} grew transposes {t_before} -> {t_after}; dumped to {p:?}",
                    fw.name()
                );
            }
            let outputs = match run_graph(&opt.graph) {
                Ok(o) => o,
                Err(e) => {
                    let p = dump_artifact("opt_uninterpretable", seed, &g);
                    panic!(
                        "seed {seed}: {} optimized graph fails to interpret ({e}); \
                         dumped to {p:?}",
                        fw.name()
                    );
                }
            };
            if !agree(&reference, &outputs) {
                let p = dump_artifact("divergence", seed, &g);
                let po = dump_artifact(&format!("divergence_{}_opt", fw.name()), seed, &opt.graph);
                panic!(
                    "seed {seed}: {} output diverges from reference; \
                     source dumped to {p:?}, optimized to {po:?}",
                    fw.name()
                );
            }
        }
    }
    // Sanity on coverage: most (framework, seed) pairs must actually
    // compile, otherwise the harness silently tests nothing.
    assert!(
        compiled > (seeds as usize) * frameworks.len() / 2,
        "only {compiled} compiles across {seeds} seeds ({skipped} skips)"
    );
}

#[test]
fn streamline_is_idempotent_at_fixpoint() {
    let device = DeviceConfig::snapdragon_8gen2();
    let smartmem = smartmem::core::SmartMemPipeline::new();
    for seed in 0..seeds() {
        let g = random_graph(seed);
        let Ok(once) = smartmem.optimize(&g, &device) else { continue };
        let Ok(twice) = smartmem.optimize(&once.graph, &device) else {
            let p = dump_artifact("refix_unsupported", seed, &once.graph);
            panic!("seed {seed}: streamlined graph no longer compiles; dumped to {p:?}");
        };
        if export_json(&once.graph) != export_json(&twice.graph) {
            let p = dump_artifact("not_idempotent", seed, &g);
            let p1 = dump_artifact("not_idempotent_once", seed, &once.graph);
            let p2 = dump_artifact("not_idempotent_twice", seed, &twice.graph);
            panic!(
                "seed {seed}: second streamline still rewrites; \
                 dumps at {p:?}, {p1:?}, {p2:?}"
            );
        }
        // A fixpoint graph reports zero further removals on re-run.
        assert_eq!(
            twice.stats.streamline_removed_ops, 0,
            "seed {seed}: fixpoint graph claims more removals"
        );
    }
}

#[test]
fn import_export_roundtrip_survives_pipelines() {
    // The optimized graph must survive an export → import round trip
    // unchanged — counterexample artifacts have to be replayable.
    let device = DeviceConfig::snapdragon_8gen2();
    let smartmem = smartmem::core::SmartMemPipeline::new();
    for seed in (0..seeds()).step_by(7) {
        let g = random_graph(seed);
        let Ok(opt) = smartmem.optimize(&g, &device) else { continue };
        let json = export_json(&opt.graph);
        let back = smartmem::ir::import::import_json(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: reimport failed: {e}"));
        assert_eq!(json, export_json(&back), "seed {seed}: roundtrip not stable");
        let a = run_graph(&opt.graph).unwrap();
        let b = run_graph(&back).unwrap();
        assert!(agree(&a, &b), "seed {seed}: roundtrip changed semantics");
    }
}
