//! Offline-dependency guard.
//!
//! The build container vendors everything under `vendor/` and has no
//! crates.io access: a registry (or git) dependency would resolve on a
//! networked laptop, pass local checks, and then break the build farm
//! silently. This test fails the moment `Cargo.lock` or any workspace
//! `Cargo.toml` references a non-path source. CI runs the same check as
//! a cheap grep step so the failure reports in the lint job too.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root `smartmem` package *is* the
    // workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn cargo_lock_has_no_registry_sources() {
    let lock =
        std::fs::read_to_string(workspace_root().join("Cargo.lock")).expect("workspace Cargo.lock");
    for (i, line) in lock.lines().enumerate() {
        let line = line.trim();
        assert!(
            !line.starts_with("source ="),
            "Cargo.lock:{}: locked package has a non-path source: {line}\n\
             (this container is offline — vendor the crate under vendor/ instead)",
            i + 1
        );
    }
}

/// Every dependency entry in every workspace manifest must be a path or
/// workspace dependency. Covers `[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]` and the `[workspace.dependencies]` table.
#[test]
fn manifests_declare_only_path_dependencies() {
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    let members = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    for line in members.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(member) = line.strip_prefix('"').and_then(|l| l.strip_suffix('"')) {
            if member.contains('/') {
                manifests.push(root.join(member).join("Cargo.toml"));
            }
        }
    }
    assert!(manifests.len() > 5, "member discovery broke: {manifests:?}");
    for manifest in manifests {
        check_manifest(&manifest);
    }
}

fn check_manifest(path: &Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut in_dep_table = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_table = line.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if !in_dep_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ok = line.contains("path =")
            || line.contains("path=")
            || line.contains("workspace = true")
            || line.contains(".workspace = true")
            || line.ends_with('{'); // multi-line tables are not used here
        assert!(
            ok,
            "{}:{}: dependency is not declared via path/workspace: {line}\n\
             (a bare version requirement would pull from crates.io — \
             this container is offline; vendor it under vendor/)",
            path.display(),
            i + 1
        );
        assert!(
            !line.contains("git =") && !line.contains("registry ="),
            "{}:{}: git/registry dependency source: {line}",
            path.display(),
            i + 1
        );
    }
}
