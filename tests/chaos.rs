//! Deterministic chaos soak of the serve tier: 50 seeds of
//! every-fault-kind injection under concurrent submission and
//! cancellation, checking the conservation law on every run —
//! `submitted == completed + failed + cancelled`, no ticket lost or
//! double-resolved, every scheduler account drained — plus the
//! byte-identity of the zero-fault path (a `None` plan and an inert
//! plan produce identical serving decisions) and fleet-level recovery
//! through the router (a killed replica's queued requests complete on
//! the survivors).

use smartmem::ir::{DType, Graph, GraphBuilder};
use smartmem::serve::{
    AdmissionControl, InferenceRequest, ModelSpec, Priority, Router, ServeConfig, Server,
    SubmitError,
};
use smartmem::sim::{DeviceConfig, FaultPlan, FaultRates};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn toy_graph(name: &str, width: usize) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input("x", &[1, 16, width], DType::F16);
    let w = b.weight("w", &[width, width], DType::F16);
    let mm = b.matmul(x, w);
    b.output(mm);
    b.finish()
}

fn models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::new("chaos-a", toy_graph("chaos-a", 32)),
        ModelSpec::new("chaos-b", toy_graph("chaos-b", 48)),
    ]
}

fn devices() -> Vec<DeviceConfig> {
    vec![DeviceConfig::snapdragon_8gen2(), DeviceConfig::apple_m1(), DeviceConfig::snapdragon_835()]
}

/// A scratch cache dir unique to this process and tag; removed by the
/// caller when the run ends (no tempfile crate in the container).
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smartmem-chaos-{}-{tag}", std::process::id()))
}

/// All six fault kinds at rates aggressive enough that every soak
/// seed injects several, but survivable within the default retry
/// budget for most requests.
fn soak_rates() -> FaultRates {
    FaultRates {
        device_stall: 0.05,
        device_death: 0.02,
        exec_error: 0.08,
        compile_fault: 0.04,
        cache_dir_io: 0.10,
        clock_skew: 0.05,
    }
}

/// One soak run: 3 submitter threads × 12 requests over 2 models × 3
/// classes, every 5th request cancelled right after submission.
/// Returns nothing — panics on any conservation violation.
fn soak_one_seed(seed: u64) {
    let dir = scratch_dir(&format!("soak-{seed}"));
    let plan = Arc::new(FaultPlan::new(seed, soak_rates()).with_stall(Duration::from_micros(50)));
    let config = ServeConfig {
        fault_plan: Some(Arc::clone(&plan)),
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let server = Arc::new(Server::start(models(), devices(), config));
    const THREADS: u64 = 3;
    const PER_THREAD: u64 = 12;
    let (mut accepted, mut client_completed, mut client_failed, mut client_cancelled) =
        (0u64, 0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let mut tickets = Vec::new();
                    for i in 0..PER_THREAD {
                        let class = Priority::ALL[(t + i) as usize % 3];
                        let req = InferenceRequest::new((i % 2) as usize)
                            .with_priority(class)
                            .with_tag(seed << 32 | t << 16 | i);
                        let ticket = server.submit(req).expect("submit");
                        if i % 5 == 4 {
                            // Race a cancel against the cut; either
                            // outcome is fine, conservation must hold.
                            ticket.cancel_handle().cancel();
                        }
                        tickets.push(ticket);
                    }
                    let mut counts = (0u64, 0u64, 0u64); // completed, failed, cancelled
                    for ticket in tickets {
                        let r = ticket.wait();
                        if r.cancelled {
                            assert!(r.error.is_none(), "cancelled responses carry no error");
                            counts.2 += 1;
                        } else if r.error.is_some() {
                            counts.1 += 1;
                        } else {
                            counts.0 += 1;
                        }
                        assert!(
                            u64::from(r.retries) <= 3 + 1,
                            "retry budget exceeded: {} attempts",
                            r.retries
                        );
                    }
                    counts
                })
            })
            .collect();
        for h in handles {
            let (c, f, x) = h.join().expect("submitter thread");
            accepted += PER_THREAD;
            client_completed += c;
            client_failed += f;
            client_cancelled += x;
        }
    });
    // Every ticket resolved exactly once (wait() consumed each), and
    // the server's books agree with the clients'.
    for d in 0..server.pool().len() {
        assert_eq!(
            server.pool().load_ns(d),
            0,
            "seed {seed}: device {d} account must drain to zero"
        );
    }
    let server = Arc::try_unwrap(server).ok().expect("all threads joined");
    let stats = server.shutdown();
    assert_eq!(stats.submitted, accepted, "seed {seed}");
    assert_eq!(stats.completed, client_completed, "seed {seed}: completed mismatch");
    assert_eq!(stats.failed, client_failed, "seed {seed}: failed mismatch");
    assert_eq!(stats.cancelled, client_cancelled, "seed {seed}: cancelled mismatch");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed + stats.cancelled,
        "seed {seed}: conservation violated"
    );
    assert!(
        stats.recovered <= stats.retried,
        "seed {seed}: every recovered request went through at least one retry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fifty_seed_soak_conserves_every_request() {
    for seed in 0..50 {
        soak_one_seed(seed);
    }
}

/// One response's deterministic fields: request id, completion seq,
/// model, device, batch size, cache hit, retries, error.
type ResponseRow = (u64, u64, String, String, usize, bool, u32, Option<String>);

/// The serving decisions of one sequential run: everything
/// deterministic about each response, plus the final counters.
#[derive(Debug, PartialEq)]
struct RunTranscript {
    responses: Vec<ResponseRow>,
    submitted: u64,
    completed: u64,
    failed: u64,
    batches: u64,
    batch_histogram: Vec<u64>,
    per_device_batches: Vec<u64>,
    faults_total: u64,
}

fn sequential_run(plan: Option<Arc<FaultPlan>>) -> RunTranscript {
    let config = ServeConfig { fault_plan: plan, ..ServeConfig::default() };
    let server = Server::start(models(), devices(), config);
    let mut responses = Vec::new();
    for i in 0..24u64 {
        let class = Priority::ALL[i as usize % 3];
        let req = InferenceRequest::new((i % 2) as usize).with_priority(class).with_tag(i);
        // Sequential submit + wait: the schedule is deterministic, so
        // every placement and batching decision must be too.
        let r = server.submit(req).expect("submit").wait();
        responses.push((
            r.request_id,
            r.completion_seq,
            r.model,
            r.device,
            r.batch_size,
            r.compile_cache_hit,
            r.retries,
            r.error,
        ));
    }
    let stats = server.shutdown();
    RunTranscript {
        responses,
        submitted: stats.submitted,
        completed: stats.completed,
        failed: stats.failed,
        batches: stats.batches,
        batch_histogram: stats.batch_histogram,
        per_device_batches: stats.per_device_batches,
        faults_total: stats.faults.iter().sum(),
    }
}

#[test]
fn zero_fault_path_is_byte_identical_to_no_plan() {
    let none = sequential_run(None);
    let inert = sequential_run(Some(Arc::new(FaultPlan::inert())));
    assert_eq!(none, inert, "an inert plan must not change a single serving decision");
    assert_eq!(none.faults_total, 0);
    assert_eq!(none.failed, 0);
    assert_eq!(none.completed, 24);
}

#[test]
fn killed_replica_requests_complete_on_survivors_with_warm_restart() {
    let dir = scratch_dir("fleet");
    let rates = FaultRates::transient(0.1);
    let config = ServeConfig {
        fault_plan: Some(Arc::new(FaultPlan::new(7, rates))),
        cache_dir: Some(dir.clone()),
        max_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let router = Arc::new(Router::start(3, models(), devices(), config));
    const N: u64 = 48;
    std::thread::scope(|scope| {
        let submit = {
            let router = Arc::clone(&router);
            scope.spawn(move || {
                let tickets: Vec<_> = (0..N)
                    .map(|i| {
                        let req = InferenceRequest::new((i % 2) as usize).with_tag(1 << 40 | i);
                        router.submit(req).expect("submit")
                    })
                    .collect();
                for t in tickets {
                    let r = t.wait();
                    assert!(
                        r.error.is_none(),
                        "every client request must complete despite the kill: {:?}",
                        r.error
                    );
                }
            })
        };
        // Kill a replica while the workload is in flight, then bring
        // it back — the shared cache dir warm-starts the newcomer.
        let chaos = {
            let router = Arc::clone(&router);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                assert!(router.kill(1));
                std::thread::sleep(Duration::from_millis(4));
                assert!(router.restart(1));
            })
        };
        submit.join().expect("submitter");
        chaos.join().expect("chaos thread");
    });
    let router = Arc::try_unwrap(router).ok().expect("threads joined");
    let stats = router.stats();
    assert_eq!(stats.kills, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.rerouted, stats.killed, "every killed request was rerouted");
    // Fleet-level conservation: every generation's books balance.
    for (i, s) in stats.per_replica.iter().enumerate() {
        assert_eq!(
            s.submitted,
            s.completed + s.failed + s.cancelled,
            "generation {i}: conservation violated"
        );
    }
    // Client view: all N requests completed somewhere (asserted per
    // response above); fleet completions say the same.
    assert_eq!(stats.completed, N, "all client requests completed exactly once");
    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_sheds_best_effort_first_and_never_interactive() {
    // An interactive budget far below any device's estimate makes the
    // pool slack negative from the first request: BestEffort sheds
    // immediately, Batch only beyond its grace, Interactive never.
    let config = ServeConfig {
        deadlines: smartmem::serve::ClassDeadlines {
            interactive: Duration::from_nanos(1),
            ..Default::default()
        },
        admission: AdmissionControl { enabled: true, batch_grace: Duration::from_secs(1) },
        ..ServeConfig::default()
    };
    let server = Server::start(models(), devices(), config);
    let shed = server.submit(InferenceRequest::new(0).with_priority(Priority::BestEffort));
    assert!(matches!(shed, Err(SubmitError::Shed)), "BestEffort must shed on negative slack");
    let batch = server.submit(InferenceRequest::new(0).with_priority(Priority::Batch));
    assert!(batch.is_ok(), "Batch rides its grace window");
    let interactive = server.submit(InferenceRequest::new(0).with_priority(Priority::Interactive));
    assert!(interactive.is_ok(), "Interactive is never shed");
    for t in [batch.unwrap(), interactive.unwrap()] {
        assert!(t.wait().error.is_none());
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);
}
