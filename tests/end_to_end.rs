//! Cross-crate integration tests: the paper's headline claims as
//! executable assertions, spanning models → pipelines → simulator.

use smartmem::baselines::{
    all_mobile_frameworks, DnnFusionFramework, MnnFramework, NcnnFramework, TfLiteFramework,
    TorchInductorFramework, TvmFramework,
};
use smartmem::core::{Framework, SmartMemConfig, SmartMemPipeline};
use smartmem::models;
use smartmem::sim::DeviceConfig;

fn device() -> DeviceConfig {
    DeviceConfig::snapdragon_8gen2()
}

#[test]
fn smartmem_beats_every_baseline_on_swin() {
    let graph = models::swin_tiny(1);
    let device = device();
    let ours = SmartMemPipeline::new().run(&graph, &device).unwrap().latency_ms;
    for fw in all_mobile_frameworks() {
        if let Ok(r) = fw.run(&graph, &device) {
            assert!(
                r.latency_ms >= ours * 0.999,
                "{} ({:.1} ms) should not beat SmartMem ({ours:.1} ms)",
                fw.name(),
                r.latency_ms
            );
        }
    }
}

#[test]
fn table8_ordering_on_transformers() {
    // Ours < DNNF < TVM < MNN — the paper's Table 8 ordering.
    let device = device();
    for graph in [models::swin_tiny(1), models::sd_text_encoder(1)] {
        let ours = SmartMemPipeline::new().run(&graph, &device).unwrap().latency_ms;
        let dnnf = DnnFusionFramework::new().run(&graph, &device).unwrap().latency_ms;
        let tvm = TvmFramework::new().run(&graph, &device).unwrap().latency_ms;
        let mnn = MnnFramework::new().run(&graph, &device).unwrap().latency_ms;
        assert!(
            ours < dnnf && dnnf < tvm && tvm < mnn,
            "{}: {ours:.1} {dnnf:.1} {tvm:.1} {mnn:.1}",
            graph.name()
        );
    }
}

#[test]
fn table7_operator_counts_ordering() {
    // Ours <= DNNF <= TVM <= MNN kernel counts (Table 7 fusion rates).
    let device = device();
    let graph = models::swin_tiny(1);
    let count = |fw: &dyn Framework| fw.optimize(&graph, &device).unwrap().stats.kernel_count;
    let ours = count(&SmartMemPipeline::new());
    let dnnf = count(&DnnFusionFramework::new());
    let tvm = count(&TvmFramework::new());
    let mnn = count(&MnnFramework::new());
    assert!(ours < dnnf, "elimination must reduce kernels: {ours} vs {dnnf}");
    assert!(dnnf <= tvm, "{dnnf} vs {tvm}");
    assert!(dnnf < mnn, "{dnnf} vs {mnn}");
    // Paper: SmartMem fusion rate up to 1.7x DNNFusion's.
    let ratio = dnnf as f64 / ours as f64;
    assert!((1.05..2.6).contains(&ratio), "fusion ratio {ratio}");
}

#[test]
fn support_matrix_matches_table7() {
    let device = device();
    let ncnn = NcnnFramework::new();
    let tflite = TfLiteFramework::new();
    // Transformers unsupported on NCNN/TFLite.
    assert!(ncnn.optimize(&models::swin_tiny(1), &device).is_err());
    assert!(tflite.optimize(&models::vit(1), &device).is_err());
    // ConvNets per Table 7: NCNN runs RegNet/ResNext/Yolo; TFLite only
    // RegNet/ResNext.
    assert!(ncnn.optimize(&models::regnet(1), &device).is_ok());
    assert!(ncnn.optimize(&models::resnext50(1), &device).is_ok());
    assert!(ncnn.optimize(&models::yolo_v8(1), &device).is_ok());
    assert!(tflite.optimize(&models::regnet(1), &device).is_ok());
    assert!(tflite.optimize(&models::yolo_v8(1), &device).is_err());
}

#[test]
fn ablation_levels_are_monotone_on_swin() {
    // Fig. 8: each optimization level improves (or at least does not
    // hurt) end-to-end latency.
    let graph = models::swin_tiny(1);
    let device = device();
    let run = |cfg: SmartMemConfig| {
        SmartMemPipeline::with_config(cfg)
            .optimize(&graph, &device)
            .unwrap()
            .estimate(&device)
            .latency_ms
    };
    let base = run(SmartMemConfig::dnnfusion_level());
    let lte = run(SmartMemConfig::lte_level());
    let layout = run(SmartMemConfig::layout_level());
    let full = run(SmartMemConfig::full());
    assert!(lte <= base * 1.02, "LTE {lte} vs base {base}");
    assert!(layout <= lte * 1.05, "layout {layout} vs lte {lte}");
    assert!(full < layout, "full {full} vs layout {layout}");
    assert!(base / full > 1.3, "total ablation gain {:.2}", base / full);
}

#[test]
fn transform_latency_fraction_shape_of_table1() {
    // Under the MNN-style pipeline, transformers burn a large share of
    // time in transformations; classic ConvNets do not.
    let device = device();
    let mnn = MnnFramework::new();
    let swin = mnn.run(&models::swin_tiny(1), &device).unwrap();
    let resnet = mnn.run(&models::resnet50(1), &device).unwrap();
    assert!(swin.transform_fraction() > 0.25, "swin {:.2}", swin.transform_fraction());
    assert!(resnet.transform_fraction() < 0.10, "resnet {:.2}", resnet.transform_fraction());
    assert!(resnet.gmacs > 1.5 * swin.gmacs, "ConvNets run much closer to peak");
}

#[test]
fn memory_counters_favour_smartmem() {
    // Fig. 7: baselines issue more memory accesses than SmartMem on
    // both models, and more cache misses on the ConvNet. (On CSwin our
    // reproduction's mapped convolution reads keep some residual line
    // drag, so the miss advantage there is weaker than the paper's —
    // recorded as a deviation in EXPERIMENTS.md.)
    let device = device();
    let ours_r = SmartMemPipeline::new().run(&models::resnext50(1), &device).unwrap();
    let dnnf_r = DnnFusionFramework::new().run(&models::resnext50(1), &device).unwrap();
    assert!(dnnf_r.mem.accesses() >= ours_r.mem.accesses());
    assert!(dnnf_r.mem.misses() > ours_r.mem.misses());
    // The MNN-style pipeline (relayouts + unfused transforms) is clearly
    // worse on both counters for the transformer.
    let ours_c = SmartMemPipeline::new().run(&models::cswin(1), &device).unwrap();
    let mnn_c = MnnFramework::new().run(&models::cswin(1), &device).unwrap();
    assert!(mnn_c.mem.accesses() > ours_c.mem.accesses());
}

#[test]
fn batch_scaling_keeps_speedup() {
    // Fig. 10: the advantage holds as batch grows.
    let device = device();
    for batch in [1usize, 4] {
        let graph = models::swin_tiny(batch);
        let ours = SmartMemPipeline::new().run(&graph, &device).unwrap().latency_ms;
        let dnnf = DnnFusionFramework::new().run(&graph, &device).unwrap().latency_ms;
        let speedup = dnnf / ours;
        assert!(speedup > 1.2, "batch {batch}: speedup {speedup:.2}");
    }
}

#[test]
fn portability_to_older_socs() {
    // Fig. 11: SmartMem still wins on weaker devices.
    let graph = models::swin_tiny(1);
    for device in [DeviceConfig::snapdragon_835(), DeviceConfig::dimensity_700()] {
        let ours = SmartMemPipeline::new().run(&graph, &device).unwrap().latency_ms;
        let mnn = MnnFramework::new().run(&graph, &device).unwrap().latency_ms;
        assert!(mnn / ours > 1.5, "{}: {:.1}x", device.name, mnn / ours);
    }
}

#[test]
fn portability_to_new_device_profiles() {
    // The capability model generalizes: SmartMem wins on the Mali-AFBC
    // profile the same way it does on Adreno, and still wins on the
    // texture-less server NPU (where the gain comes from elimination
    // and fusion alone, as on Apple/desktop).
    let graph = models::swin_tiny(1);
    for device in [DeviceConfig::mali_g710(), DeviceConfig::server_npu()] {
        let ours = SmartMemPipeline::new().run(&graph, &device).unwrap().latency_ms;
        let dnnf = DnnFusionFramework::new().run(&graph, &device).unwrap().latency_ms;
        assert!(dnnf / ours > 1.05, "{}: {:.2}x", device.name, dnnf / ours);
    }
}

#[test]
fn afbc_ab_speedup_on_texture_heavy_conv() {
    // FlashMem-style claim: compressed-framebuffer bandwidth shifts the
    // roofline. A texture-bound depthwise convolution (the same micro
    // as Table 2's memory-class study) must run clearly faster with
    // AFBC on than off; at whole-model scale the launch- and
    // compute-bound kernels dilute the gain, but it must stay a gain.
    use smartmem::ir::{DType, GraphBuilder, UnaryKind};
    let mali_on = DeviceConfig::mali_g710();
    let mali_off = mali_on.clone().with_afbc(false);
    let mut b = GraphBuilder::new("dwconv-micro");
    let x = b.input("x", &[1, 64, 224, 224], DType::F16);
    let w = b.weight("w", &[64, 1, 3, 3], DType::F16);
    let c = b.conv2d(x, w, (1, 1), (1, 1), 64);
    let r = b.unary(c, UnaryKind::Relu);
    b.output(r);
    let micro = b.finish();
    let on = SmartMemPipeline::new().run(&micro, &mali_on).unwrap();
    let off = SmartMemPipeline::new().run(&micro, &mali_off).unwrap();
    let speedup = off.latency_ms / on.latency_ms;
    assert!(speedup > 1.3, "AFBC speedup on texture-bound depthwise conv: {speedup:.3}x");
    // Same kernels, same layouts — only the texture bandwidth moved.
    assert_eq!(on.kernel_count, off.kernel_count);
    // Whole models: a measurable win on a conv-heavy network, and
    // never a slowdown on a transformer.
    let regnet = models::regnet(1);
    let reg_on = SmartMemPipeline::new().run(&regnet, &mali_on).unwrap().latency_ms;
    let reg_off = SmartMemPipeline::new().run(&regnet, &mali_off).unwrap().latency_ms;
    assert!(reg_off / reg_on > 1.01, "RegNet AFBC speedup {:.3}x", reg_off / reg_on);
    let swin = models::swin_tiny(1);
    let swin_on = SmartMemPipeline::new().run(&swin, &mali_on).unwrap().latency_ms;
    let swin_off = SmartMemPipeline::new().run(&swin, &mali_off).unwrap().latency_ms;
    assert!(swin_on <= swin_off * 1.001, "AFBC must never slow a model: {swin_on} vs {swin_off}");
}

#[test]
fn desktop_gpu_gains_are_modest_but_real() {
    // Table 9: without texture memory the gain shrinks to ~1.1-1.3x.
    let device = DeviceConfig::tesla_v100();
    let graph = models::swin_tiny(1);
    let inductor = TorchInductorFramework::new().run(&graph, &device).unwrap().latency_ms;
    let ours = SmartMemPipeline::new().run(&graph, &device).unwrap().latency_ms;
    let speedup = inductor / ours;
    assert!((1.0..1.8).contains(&speedup), "desktop speedup {speedup:.2}");
}

#[test]
fn oom_behaviour_on_constrained_devices() {
    // Fig. 10/11: baselines with heavy workspaces run out of memory
    // before SmartMem does.
    let device = DeviceConfig::dimensity_700();
    let graph = models::swin_tiny(16);
    let mnn = MnnFramework::new().run(&graph, &device);
    let ours = SmartMemPipeline::new().run(&graph, &device);
    assert!(ours.is_ok(), "SmartMem should fit batch-16 Swin on 4 GB");
    if let Err(e) = mnn {
        assert!(e.reason.contains("memory"), "unexpected reason: {}", e.reason);
    }
}

#[test]
fn roofline_fractions_are_plausible() {
    // Fig. 12: achieved performance is a modest fraction of the texture
    // roof, increasing with computational intensity.
    let device = device();
    let swin = SmartMemPipeline::new().run(&models::swin_tiny(1), &device).unwrap();
    let vae = SmartMemPipeline::new().run(&models::sd_vae_decoder(1), &device).unwrap();
    assert!(swin.gmacs > 50.0 && swin.gmacs < 500.0, "swin {:.0}", swin.gmacs);
    assert!(vae.gmacs > swin.gmacs, "intensity ordering");
}
