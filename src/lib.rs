//! # smartmem
//!
//! Facade crate for the SmartMem reproduction (ASPLOS'24: *SmartMem:
//! Layout Transformation Elimination and Adaptation for Efficient DNN
//! Execution on Mobile*). Re-exports the workspace crates under stable
//! module names:
//!
//! * [`ir`] — tensor shapes, layouts, operators, computational graphs.
//! * [`index`] — symbolic index expressions and strength reduction
//!   ("index comprehension").
//! * [`sim`] — the trace-driven mobile-GPU simulator (1D buffer + 2.5D
//!   texture memory) and device configurations.
//! * [`core`] — the SmartMem optimizer: classification, layout
//!   transformation elimination, reduction-dimension layout selection,
//!   texture mapping and auto-tuning.
//! * [`baselines`] — MNN/NCNN/TFLite/TVM/DNNFusion-style pipelines.
//! * [`models`] — the 20-model zoo of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use smartmem::core::{Framework, SmartMemPipeline};
//! use smartmem::models;
//! use smartmem::sim::DeviceConfig;
//!
//! let graph = models::swin_tiny(1);
//! let device = DeviceConfig::snapdragon_8gen2();
//! let optimized = SmartMemPipeline::new().optimize(&graph, &device).unwrap();
//! let report = optimized.estimate(&device);
//! assert!(report.latency_ms > 0.0);
//! ```

pub use smartmem_baselines as baselines;
pub use smartmem_core as core;
pub use smartmem_index as index;
pub use smartmem_ir as ir;
pub use smartmem_models as models;
pub use smartmem_sim as sim;
