//! # smartmem
//!
//! Facade crate for the SmartMem reproduction (ASPLOS'24: *SmartMem:
//! Layout Transformation Elimination and Adaptation for Efficient DNN
//! Execution on Mobile*). Re-exports the workspace crates under stable
//! module names:
//!
//! * [`ir`] — tensor shapes, layouts, operators, computational graphs.
//! * [`index`] — symbolic index expressions and strength reduction
//!   ("index comprehension").
//! * [`sim`] — the trace-driven mobile-GPU simulator (1D buffer + 2.5D
//!   texture memory) and device configurations.
//! * [`core`] — the SmartMem optimizer: classification, layout
//!   transformation elimination, reduction-dimension layout selection,
//!   texture mapping and auto-tuning.
//! * [`baselines`] — MNN/NCNN/TFLite/TVM/DNNFusion-style pipelines.
//! * [`models`] — the 20-model zoo of the paper's evaluation.
//! * [`serve`] — the SLO-aware batched inference serving runtime
//!   (bounded queue → pull-mode per-(model, device) batcher with
//!   priority classes, slack-ordered cuts and request cancellation →
//!   latency-estimate scheduler → one shared, single-flight
//!   [`core::CompileSession`]).
//! * [`telemetry`] — the tracing + metrics substrate: per-request
//!   spans (queue → compile → execute) into bounded per-thread rings,
//!   a counter/gauge/histogram registry the compile session and
//!   server publish into, and Chrome-trace / bench-JSON / terminal
//!   exporters (`serve_bench --trace-out`, `trace_view`).
//!
//! # Architecture: Pass / PassManager / CompileCtx
//!
//! Every framework — SmartMem and the six baselines alike — is a
//! *declarative pass sequence* executed by one shared pass manager
//! (the `transform.Sequential` idiom of TVM's pass infrastructure):
//!
//! ```text
//!  Framework::passes() ──► PassManager ──► CompileOutput
//!                            │   runs each Pass over a CompileCtx
//!                            │   (graph, device, LTE result, fusion
//!                            │    drafts, kernel groups, layouts)
//!                            ├── per-pass wall-clock PassTiming
//!                            ├── per-pass OptStats snapshots
//!                            └── structured Diagnostics
//! ```
//!
//! * A [`core::Pass`] is one named rewrite step over the shared
//!   [`core::CompileCtx`]. The SmartMem sequence is `lte → fusion →
//!   assemble-groups → layout-select → tune`; a baseline is the same
//!   shape with its own passes swapped in (`support-check`,
//!   `insert-relayouts`, `policy-fusion`, `uniform-layout`,
//!   `finalize-utilization` from [`baselines`]).
//! * The [`core::PassManager`] executes a sequence with per-pass
//!   timing ([`core::PassTiming`]), [`core::OptStats`] snapshots after
//!   every pass, and [`core::Diagnostic`]s, producing a
//!   [`core::CompileOutput`].
//! * A framework is just a display name plus a pass sequence
//!   ([`core::Framework::passes`]); `optimize`/`optimize_timed`/`run`
//!   are provided by the trait through the manager.
//! * The session layer ([`core::CompileSession`]) memoizes compilations
//!   by *(graph fingerprint, device fingerprint, pass-sequence id)*,
//!   deduplicates concurrent cold compiles (single-flight), and
//!   compiles framework×model batches across threads
//!   ([`core::CompileSession::compile_batch`]).
//! * The serving layer ([`serve::Server`]) turns that into a runtime:
//!   requests are admitted under per-class latency budgets
//!   ([`serve::Priority`]), coalesce into per-(model, device) batches
//!   that device workers pull in slack order (cancellable via
//!   [`serve::CancelHandle`]), a roofline scheduler places them across
//!   the device pool, and artifacts are compiled once and reused
//!   cache-warm. `cargo run -p smartmem-bench --release --bin
//!   serve_bench` replays a priority-mixed open-loop trace over the
//!   zoo and reports throughput, per-class p50/p99 latency and SLO
//!   violations, per-device batch-size histograms, and the cache hit
//!   rate.
//!
//! The bench harness observes all of this: `cargo run -p smartmem-bench
//! --release --bin pass_timing` prints per-pass timing per framework,
//! parallel zoo compile times, and cache hit rates.
//!
//! # Quickstart
//!
//! ```
//! use smartmem::core::{Framework, SmartMemPipeline};
//! use smartmem::models;
//! use smartmem::sim::DeviceConfig;
//!
//! let graph = models::swin_tiny(1);
//! let device = DeviceConfig::snapdragon_8gen2();
//! let optimized = SmartMemPipeline::new().optimize(&graph, &device).unwrap();
//! let report = optimized.estimate(&device);
//! assert!(report.latency_ms > 0.0);
//! ```
//!
//! Per-pass observability:
//!
//! ```
//! use smartmem::core::{Framework, SmartMemPipeline};
//! use smartmem::models;
//! use smartmem::sim::DeviceConfig;
//!
//! let device = DeviceConfig::snapdragon_8gen2();
//! let out = SmartMemPipeline::new().optimize_timed(&models::vit(1), &device).unwrap();
//! let names: Vec<&str> = out.timings.iter().map(|t| t.pass.as_str()).collect();
//! assert_eq!(names, ["streamline", "lte", "fusion", "assemble-groups", "layout-select", "tune"]);
//! ```

pub use smartmem_baselines as baselines;
pub use smartmem_core as core;
pub use smartmem_index as index;
pub use smartmem_ir as ir;
pub use smartmem_models as models;
pub use smartmem_serve as serve;
pub use smartmem_sim as sim;
pub use smartmem_telemetry as telemetry;
