//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build container has no network access to crates.io, so this
//! vendored shim implements exactly the subset of proptest's API that
//! the workspace's property tests use: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`] macros, the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! integer-range strategies, tuple strategies, `prop::collection::vec`
//! and `prop::array::uniform3`.
//!
//! Generation is *deterministic*: each test derives its RNG seed from
//! the test name, so failures reproduce exactly across runs and CI.
//! There is no shrinking — the case index and the assertion message are
//! the debugging handles.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator whose seed is derived from `name` (the test
    /// function name), so every test has a stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Error type returned by `prop_assert!` failures inside a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!`-block configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `branch` receives a strategy for the
    /// inner level and returns the composite level. `depth` bounds the
    /// recursion; the `_desired_size` / `_branch_size` hints of the real
    /// proptest API are accepted and ignored.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let base: BoxedStrategy<Self::Value> = Rc::new(self);
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = branch(level);
            level = Rc::new(Union { choices: vec![base.clone(), deeper] });
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Rc::new(self)
    }
}

/// A type-erased, cheaply clonable strategy.
pub type BoxedStrategy<T> = Rc<dyn Strategy<Value = T>>;

impl<T> Strategy for Rc<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (the engine behind
/// [`prop_oneof!`] and `prop_recursive`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one alternative");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                ((self.start as i128) + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `elem` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 3]` with every element drawn from `elem`.
    pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
        Uniform3 { elem }
    }

    /// Strategy produced by [`uniform3`].
    pub struct Uniform3<S> {
        elem: S,
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [self.elem.generate(rng), self.elem.generate(rng), self.elem.generate(rng)]
        }
    }
}

/// The `prop::` namespace alias used by `proptest::prelude`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Uniform choice between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Declares property tests. Each test runs `config.cases` deterministic
/// cases; `prop_assert!` failures report the failing case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}
