//! A minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The build container has no network access to crates.io, so this
//! vendored shim implements the subset of rand 0.9's API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `random_range` (over integer ranges) and
//! `random_bool`. The generator is splitmix64 — deterministic per seed,
//! which is all the GA tuner requires.
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::Range;

/// Types that can be sampled uniformly from a [`Range`] by this shim.
pub trait UniformSample: Copy {
    /// Uniform draw from `range` using `next` as the entropy source.
    fn sample(range: Range<Self>, next: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample(range: Range<Self>, next: u64) -> Self {
                let span = (range.end as i128) - (range.start as i128);
                assert!(span > 0, "cannot sample from empty range");
                ((range.start as i128) + (next % span as u64) as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random-value methods over an entropy source.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value from an integer range.
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        let next = self.next_u64();
        T::sample(range, next)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stands in for rand's
    /// ChaCha-based `StdRng`; statistical quality is more than enough
    /// for GA mutation/crossover decisions).
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
